package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a named metric registry with two text expositions: the
// legacy expvar-style "name value" dump (WriteText) and Prometheus text
// exposition format v0.0.4 (WritePrometheus), with typed # TYPE/# HELP
// metadata and _bucket/_sum/_count histogram series. Counters are
// registered as *uint64 (or a func) and read at dump time, so live
// simulator counters (MemStats fields, timeline.Resource accounting,
// controller descriptor activity) cost nothing between dumps. The zero
// value is ready to use; all methods are nil-safe so unobserved
// components can register unconditionally, and registration/read are
// safe for concurrent use (the impulsed service registers labeled
// histogram children while scrapes are in flight).
type Registry struct {
	mu      sync.Mutex
	entries []entry
	index   map[string]int // name+"\xff"+labelVal -> entries slot
}

type metricKind uint8

const (
	kindUntyped metricKind = iota
	kindCounter
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// entry is one registered series: a scalar read through fn, or a
// histogram. labelKey/labelVal carry at most one label pair (all the
// service needs; the zero value means unlabeled).
type entry struct {
	name     string
	help     string
	kind     metricKind
	labelKey string
	labelVal string
	fn       func() uint64
	hist     *Histogram
}

func (e *entry) key() string { return e.name + "\xff" + e.labelVal }

// register inserts or replaces an entry (the newest machine wins,
// preserving the original Counter/Gauge replacement semantics).
func (r *Registry) register(e entry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.index == nil {
		r.index = make(map[string]int)
	}
	if i, seen := r.index[e.key()]; seen {
		r.entries[i] = e
		return
	}
	r.index[e.key()] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter registers a live monotonic counter by pointer. Registering a
// name twice replaces the earlier entry (the newest machine wins).
func (r *Registry) Counter(name string, p *uint64) {
	r.register(entry{name: name, kind: kindCounter, fn: func() uint64 { return *p }})
}

// Gauge registers a computed value.
func (r *Registry) Gauge(name string, fn func() uint64) {
	r.register(entry{name: name, kind: kindGauge, fn: fn})
}

// CounterFunc registers a computed monotonic counter with help text for
// the Prometheus exposition.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(entry{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a computed gauge with help text.
func (r *Registry) GaugeFunc(name, help string, fn func() uint64) {
	r.register(entry{name: name, help: help, kind: kindGauge, fn: fn})
}

// LabeledCounterFunc registers a computed monotonic counter carrying
// one label pair — per-shard fleet counters and the like. Series are
// keyed by (name, labelVal): the same name may be registered once per
// label value and renders as one Prometheus family.
func (r *Registry) LabeledCounterFunc(name, help, labelKey, labelVal string, fn func() uint64) {
	r.register(entry{name: name, help: help, kind: kindCounter,
		labelKey: labelKey, labelVal: labelVal, fn: fn})
}

// LabeledGaugeFunc registers a computed gauge carrying one label pair.
func (r *Registry) LabeledGaugeFunc(name, help, labelKey, labelVal string, fn func() uint64) {
	r.register(entry{name: name, help: help, kind: kindGauge,
		labelKey: labelKey, labelVal: labelVal, fn: fn})
}

// LabeledValue reads one labeled scalar series.
func (r *Registry) LabeledValue(name, labelVal string) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	i, ok := r.index[name+"\xff"+labelVal]
	var fn func() uint64
	if ok {
		fn = r.entries[i].fn
	}
	r.mu.Unlock()
	if fn == nil {
		return 0, false
	}
	return fn(), true
}

// Histogram creates and registers an unlabeled histogram. A nil
// Registry returns nil (whose Observe is a no-op).
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{}
	r.register(entry{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// HistogramVec creates a labeled histogram family; children are created
// by With and registered on first use.
func (r *Registry) HistogramVec(name, help, label string) *HistVec {
	if r == nil {
		return nil
	}
	return &HistVec{reg: r, name: name, help: help, label: label}
}

// Value reads one scalar entry (unlabeled counters and gauges).
func (r *Registry) Value(name string) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	i, ok := r.index[name+"\xff"]
	var fn func() uint64
	if ok {
		fn = r.entries[i].fn
	}
	r.mu.Unlock()
	if fn == nil {
		return 0, false
	}
	return fn(), true
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// snapshot copies the entry table so rendering never holds the lock
// while calling reader funcs.
func (r *Registry) snapshot() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]entry(nil), r.entries...)
}

// labels renders the entry's label pair as {k="v"}, or "".
func (e *entry) labels() string {
	if e.labelKey == "" {
		return ""
	}
	return "{" + e.labelKey + `="` + escapeLabel(e.labelVal) + `"}`
}

// WriteText dumps every series as "name value\n", sorted by name — the
// legacy format the CLIs' -counters output and the per-job counter dumps
// are pinned to. Scalars render exactly as before; a histogram
// contributes "<name>_count" and "<name>_sum" lines (with its label pair
// inline) so the plain format stays one value per line.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	entries := r.snapshot()
	lines := make([]string, 0, len(entries))
	for i := range entries {
		e := &entries[i]
		if e.kind == kindHistogram {
			s := e.hist.Snapshot()
			lines = append(lines,
				fmt.Sprintf("%s_count%s %d", e.name, e.labels(), s.Count),
				fmt.Sprintf("%s_sum%s %d", e.name, e.labels(), s.Sum))
			continue
		}
		lines = append(lines, fmt.Sprintf("%s%s %d", e.name, e.labels(), e.fn()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name to a legal Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_' (the registry's
// dotted names like "service.jobs_done" turn into
// "service_jobs_done").
func promName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format v0.0.4: families sorted by metric name, one # HELP (when help
// text was registered) and # TYPE line per family, series within a
// family sorted by label value, histograms as cumulative _bucket series
// with power-of-two `le` bounds plus _sum and _count. Output is
// deterministic: same registry state, same bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	entries := r.snapshot()

	type family struct {
		name   string
		help   string
		kind   metricKind
		series []*entry
	}
	fams := make(map[string]*family)
	order := []string{}
	for i := range entries {
		e := &entries[i]
		pn := promName(e.name)
		f := fams[pn]
		if f == nil {
			f = &family{name: pn, help: e.help, kind: e.kind}
			fams[pn] = f
			order = append(order, pn)
		}
		if f.help == "" {
			f.help = e.help
		}
		f.series = append(f.series, e)
	}
	sort.Strings(order)

	var b strings.Builder
	for _, pn := range order {
		f := fams[pn]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labelVal < f.series[j].labelVal })
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, e := range f.series {
			if e.kind != kindHistogram {
				fmt.Fprintf(&b, "%s%s %d\n", f.name, e.labels(), e.fn())
				continue
			}
			s := e.hist.Snapshot()
			var cum uint64
			for i := 0; i < HistBuckets-1; i++ {
				cum += s.Buckets[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, bucketLabels(e, fmt.Sprint(BucketBound(i))), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, bucketLabels(e, "+Inf"), s.Count)
			fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, e.labels(), s.Sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, e.labels(), s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// bucketLabels renders a histogram bucket's label set: the entry's own
// label pair (if any) plus le.
func bucketLabels(e *entry, le string) string {
	if e.labelKey == "" {
		return `{le="` + le + `"}`
	}
	return "{" + e.labelKey + `="` + escapeLabel(e.labelVal) + `",le="` + le + `"}`
}
