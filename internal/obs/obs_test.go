package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilHubIsSafe(t *testing.T) {
	var h *Hub
	if id := h.Track("bus"); id != 0 {
		t.Fatalf("nil hub Track = %d, want 0", id)
	}
	h.Span(0, "x", 1, 2)
	h.Instant(0, "x", 1)
	h.Busy(BusBusy, 0, 10)
	h.Event(L1Hit, 3)
	if h.Series() != nil || h.Trace() != nil {
		t.Fatal("nil hub returned non-nil facilities")
	}
	r := h.Reg()
	r.Counter("a", new(uint64)) // nil registry must also be safe
	r.Gauge("b", func() uint64 { return 1 })
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBucketing(t *testing.T) {
	s := &Series{window: 10}
	s.AddBusy(BusBusy, 5, 8)   // window 0: 3
	s.AddBusy(BusBusy, 8, 23)  // windows 0,1,2: 2,10,3
	s.AddBusy(BusBusy, 40, 40) // empty interval: nothing
	s.AddEvent(L1Hit, 0)       // window 0
	s.AddEvent(L1Hit, 9)       // window 0
	s.AddEvent(L1Hit, 10)      // window 1
	s.AddEvent(L1Miss, 35)     // window 3
	if got := s.Values(BusBusy); got[0] != 5 || got[1] != 10 || got[2] != 3 {
		t.Fatalf("bus busy per window = %v, want [5 10 3 ...]", got)
	}
	if got := s.Values(L1Hit); got[0] != 2 || got[1] != 1 {
		t.Fatalf("l1 hits per window = %v, want [2 1 ...]", got)
	}
	if s.Len() != 4 {
		t.Fatalf("series has %d windows, want 4", s.Len())
	}

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 { // header + 4 windows
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "window_start,bus_busy,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,5,") {
		t.Fatalf("window 0 row = %q", lines[1])
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Window  uint64              `json:"window_cycles"`
		Metrics map[string][]uint64 `json:"metrics"`
	}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("series JSON invalid: %v", err)
	}
	if decoded.Window != 10 || decoded.Metrics["bus_busy"][1] != 10 {
		t.Fatalf("series JSON content wrong: %+v", decoded)
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	c := uint64(7)
	r.Counter("mem.Loads", &c)
	r.Gauge("machine.cycles", func() uint64 { return 42 })
	c = 9 // counters are live
	if v, ok := r.Value("mem.Loads"); !ok || v != 9 {
		t.Fatalf("Value(mem.Loads) = %d,%v want 9,true", v, ok)
	}
	// Re-registration replaces, does not duplicate.
	r.Gauge("machine.cycles", func() uint64 { return 43 })
	if r.Len() != 2 {
		t.Fatalf("registry has %d entries, want 2", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "machine.cycles 43\nmem.Loads 9\n"
	if buf.String() != want {
		t.Fatalf("dump = %q, want %q", buf.String(), want)
	}
}

func TestTraceLimitAndPerfettoJSON(t *testing.T) {
	h := New(Config{TraceLimit: 3})
	bus := h.Track("bus")
	bank := h.Track("dram.bank00")
	h.Span(bus, "req", 0, 4)
	h.Span(bank, "read miss", 7, 27)
	h.Instant(bus, "drop", 30)
	h.Span(bus, "xfer", 31, 47) // over the limit: dropped
	if h.Trace().Len() != 3 || h.Trace().Dropped() != 1 {
		t.Fatalf("trace len=%d dropped=%d, want 3,1", h.Trace().Len(), h.Trace().Dropped())
	}

	var buf bytes.Buffer
	if err := h.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		OtherData   struct {
			Dropped uint64 `json:"dropped_events"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, buf.String())
	}
	if doc.OtherData.Dropped != 1 {
		t.Fatalf("dropped_events = %d, want 1", doc.OtherData.Dropped)
	}
	var threadNames []string
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				threadNames = append(threadNames, ev["args"].(map[string]interface{})["name"].(string))
			}
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if len(threadNames) != 2 || threadNames[0] != "bus" || threadNames[1] != "dram.bank00" {
		t.Fatalf("thread names = %v", threadNames)
	}
	if spans != 2 || instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 2,1", spans, instants)
	}
}

func TestWriteTraceWithoutTracing(t *testing.T) {
	h := New(Config{})
	if err := h.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace on a hub without tracing should error")
	}
}
