package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// traceEvent is one recorded span or instant. Names are expected to be
// compile-time constants at the instrumentation sites, so retaining the
// string costs a header, not a copy.
type traceEvent struct {
	track   TrackID
	name    string
	start   Cycle
	end     Cycle
	instant bool
}

// Trace is a bounded in-memory span buffer.
type Trace struct {
	limit   int
	events  []traceEvent
	dropped uint64
}

func (t *Trace) add(e traceEvent) {
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Len returns the number of retained events.
func (t *Trace) Len() int { return len(t.events) }

// Dropped returns how many events were discarded past the limit.
func (t *Trace) Dropped() uint64 { return t.dropped }

// WriteTrace emits the Hub's spans as Chrome trace-event JSON (the format
// both chrome://tracing and ui.perfetto.dev load). One trace "thread" per
// registered track; ts/dur are simulated cycles written as microseconds,
// so 1 ms of viewer time is 1000 cycles.
func (h *Hub) WriteTrace(w io.Writer) error {
	if h == nil || h.trace == nil {
		return fmt.Errorf("obs: span tracing was not enabled")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"impulse machine"}}`)
	for i, name := range h.tracks {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			i+1, strconv.Quote(name)))
		// sort_index keeps tracks in registration order (cpu, bus, mc,
		// banks...) rather than alphabetical.
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			i+1, i))
	}
	for _, e := range h.trace.events {
		if e.instant {
			emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%d,"s":"t","cat":"sim","name":%s}`,
				int(e.track), e.start, strconv.Quote(e.name)))
			continue
		}
		dur := uint64(1) // zero-width spans are invisible; clamp to 1 cycle
		if e.end > e.start {
			dur = e.end - e.start
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"cat":"sim","name":%s}`,
			int(e.track), e.start, dur, strconv.Quote(e.name)))
	}
	if _, err := fmt.Fprintf(bw, "\n],\"otherData\":{\"dropped_events\":%d}}\n", h.trace.dropped); err != nil {
		return err
	}
	return bw.Flush()
}
