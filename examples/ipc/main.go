// Example ipc: the paper's §6 sketch of system-level uses — no-copy
// message assembly for interprocess communication.
//
// "A major chore of remote IPC is collecting message data from multiple
// user buffers and protocol headers. Impulse's support for scatter/gather
// can remove the overhead of gathering data in software."
//
// A sender owns a ring of scattered buffers; each message must be
// consumed as one contiguous stream. The software path copies every word
// into a staging area; the Impulse path builds a gather alias over the
// ring once and the "message" simply is that alias.
package main

import (
	"fmt"
	"log"

	"impulse"
)

func main() {
	log.SetFlags(0)
	const bufs, words, msgs = 32, 1024, 4

	conv, err := impulse.NewSystem(impulse.Options{Controller: impulse.Conventional})
	if err != nil {
		log.Fatal(err)
	}
	sw, err := impulse.RunIPC(conv, bufs, words, msgs, false)
	if err != nil {
		log.Fatal(err)
	}

	imp, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		log.Fatal(err)
	}
	hw, err := impulse.RunIPC(imp, bufs, words, msgs, true)
	if err != nil {
		log.Fatal(err)
	}
	if sw.Checksum != hw.Checksum {
		log.Fatalf("checksums differ: %v vs %v", sw.Checksum, hw.Checksum)
	}

	fmt.Printf("%d messages of %d buffers x %d words each:\n\n", msgs, bufs, words)
	fmt.Printf("software gather: %8d cycles, %7d loads, %7d stores\n",
		sw.Row.Cycles, sw.Row.Stats.Loads, sw.Row.Stats.Stores)
	fmt.Printf("impulse gather:  %8d cycles, %7d loads, %7d stores\n",
		hw.Row.Cycles, hw.Row.Stats.Loads, hw.Row.Stats.Stores)
	fmt.Printf("\nspeedup %.2fx; the copy loop's load+store per word is gone\n",
		impulse.Speedup(sw.Row, hw.Row))
}
