// Example recolor: no-copy physical page recoloring (§2.3 "Direct
// mapping", §3.1 "Page recoloring").
//
// Two arrays whose physical pages share L2 colors evict each other on
// every sweep. A conventional system can only fix this by copying one
// array to better-colored pages; Impulse remaps the pages through shadow
// addresses whose L2 index bits land in disjoint cache regions — no data
// moves, only the controller's page table changes.
package main

import (
	"fmt"
	"log"

	"impulse"
)

func main() {
	log.SetFlags(0)
	sys, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		log.Fatal(err)
	}

	// Allocate two 64 KB arrays deliberately ON THE SAME L2 colors, the
	// conflict a hostile physical layout can produce.
	const bytes = 64 << 10
	a, err := sys.K.AllocAndMapColored(bytes, 0, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.K.AllocAndMapColored(bytes, 0, 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	sweep := func() (memLoads uint64) {
		before := sys.Snapshot()
		for pass := 0; pass < 4; pass++ {
			for off := uint64(0); off < bytes; off += 8 {
				sys.LoadF64(impulse.VAddr(a) + impulse.VAddr(off))
				sys.LoadF64(impulse.VAddr(b) + impulse.VAddr(off))
			}
		}
		return sys.Snapshot().MemLoads - before.MemLoads
	}

	conflicted := sweep()
	fmt.Printf("before recoloring: %d loads went to memory (the arrays thrash the L2)\n", conflicted)

	// Recolor without copying: a to colors 8-15, b to colors 16-23.
	if err := sys.Recolor(impulse.VAddr(a), bytes, 8, 15); err != nil {
		log.Fatal(err)
	}
	if err := sys.Recolor(impulse.VAddr(b), bytes, 16, 23); err != nil {
		log.Fatal(err)
	}

	recolored := sweep()
	fmt.Printf("after recoloring:  %d loads went to memory\n", recolored)
	fmt.Printf("conflict misses removed: %.0f%% — with zero bytes copied\n",
		100*(1-float64(recolored)/float64(conflicted)))
}
