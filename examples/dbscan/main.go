// Example dbscan: the abstract's claim that Impulse benefits "regularly
// strided, memory-bound applications of commercial importance, such as
// database and multimedia programs", made concrete.
//
// A row-store table holds 64-byte records with one hot 8-byte field.
// Two classic access paths:
//
//   - full-table column projection (SELECT SUM(field) FROM t): a strided
//     scan that wastes 7/8 of every cache line conventionally, and
//     becomes a dense stream under a base+stride shadow alias;
//   - index scan (fetch the field of selected record ids): an indirect
//     access that becomes an Impulse scatter/gather through the RID list.
package main

import (
	"fmt"
	"log"

	"impulse"
	"impulse/internal/workloads"
)

func main() {
	log.SetFlags(0)
	p := workloads.DBDefault()
	fmt.Printf("table: %d records x %d bytes (%d MB), hot field at +%d\n\n",
		p.Records, p.RecordBytes, uint64(p.Records)*p.RecordBytes>>20, p.FieldOffset)

	newSys := func(kind impulse.Options) *impulse.System {
		s, err := impulse.NewSystem(kind)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	conv := impulse.Options{Controller: impulse.Conventional}
	imp := impulse.Options{Controller: impulse.Impulse, Prefetch: impulse.PrefetchMC}

	pc, err := workloads.RunDBProjection(newSys(conv), p, false)
	if err != nil {
		log.Fatal(err)
	}
	pi, err := workloads.RunDBProjection(newSys(imp), p, true)
	if err != nil {
		log.Fatal(err)
	}
	if pc.Sum != pi.Sum {
		log.Fatalf("projection sums differ: %v vs %v", pc.Sum, pi.Sum)
	}
	fmt.Printf("projection: %8d -> %8d cycles (%.2fx), bus bytes %d -> %d (%.1fx less)\n",
		pc.Row.Cycles, pi.Row.Cycles, impulse.Speedup(pc.Row, pi.Row),
		pc.Row.Stats.BusBytes, pi.Row.Stats.BusBytes,
		float64(pc.Row.Stats.BusBytes)/float64(pi.Row.Stats.BusBytes))

	const sel = 16
	ic, err := workloads.RunDBIndexScan(newSys(conv), p, sel, false)
	if err != nil {
		log.Fatal(err)
	}
	ii, err := workloads.RunDBIndexScan(newSys(imp), p, sel, true)
	if err != nil {
		log.Fatal(err)
	}
	if ic.Sum != ii.Sum {
		log.Fatalf("index sums differ: %v vs %v", ic.Sum, ii.Sum)
	}
	fmt.Printf("index 1/%d:  %8d -> %8d cycles (%.2fx), bus bytes %d -> %d (%.1fx less)\n",
		sel, ic.Row.Cycles, ii.Row.Cycles, impulse.Speedup(ic.Row, ii.Row),
		ic.Row.Stats.BusBytes, ii.Row.Stats.BusBytes,
		float64(ic.Row.Stats.BusBytes)/float64(ii.Row.Stats.BusBytes))
}
