// Example cg: the paper's §3.1/§4.1 experiment in miniature — NAS
// conjugate gradient under the three memory-system treatments of Table 1,
// with and without controller prefetching.
//
// Scatter/gather remapping moves the x[COLUMN[j]] indirection to the
// memory controller: the CPU issues one load fewer per nonzero and every
// gathered cache line is 100% useful data. Page recoloring instead keeps
// the conventional access pattern but places the multiplicand vector,
// DATA, and COLUMN in disjoint regions of the physically-indexed L2.
package main

import (
	"fmt"
	"log"

	"impulse"
	"impulse/internal/workloads"
)

func main() {
	log.SetFlags(0)

	// A geometry small enough to finish in seconds; run cmd/table1 for
	// the full Table 1 grid at the paper's dimension.
	par := impulse.CGParams{N: 8192, Nonzer: 6, Niter: 1, CGIts: 4, Shift: 10, RCond: 0.1}
	m := impulse.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	fmt.Printf("NAS CG: n=%d, %d nonzeros, %d CG iterations\n\n", par.N, m.NNZ(), par.Niter*par.CGIts)

	run := func(name string, opts impulse.Options, mode workloads.CGMode) impulse.Row {
		sys, err := impulse.NewSystem(opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := impulse.RunCG(sys, par, mode, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %s\n", name, res.Row)
		return res.Row
	}

	base := run("conventional",
		impulse.Options{Controller: impulse.Conventional}, impulse.CGConventional)
	sg := run("impulse scatter/gather",
		impulse.Options{Controller: impulse.Impulse}, impulse.CGScatterGather)
	sgPF := run("impulse scatter/gather + prefetch",
		impulse.Options{Controller: impulse.Impulse, Prefetch: impulse.PrefetchMC}, impulse.CGScatterGather)
	rec := run("impulse page recoloring",
		impulse.Options{Controller: impulse.Impulse}, impulse.CGRecolor)

	fmt.Println()
	fmt.Printf("speedups vs conventional: scatter/gather %.2f, +prefetch %.2f, recoloring %.2f\n",
		impulse.Speedup(base, sg), impulse.Speedup(base, sgPF), impulse.Speedup(base, rec))
	fmt.Println("(the paper's Table 1 reports 1.33, 1.67, and 1.04 for these at Class A scale)")
}
