// Example scripted: drive the simulator from a memory-access program —
// the trace-replay front end. One script expresses both variants of a
// strided-sum kernel: the `impulse` block runs on an Impulse system, the
// `else` block on a conventional one, so the same program is measured on
// both machines and must compute the same answer.
package main

import (
	"fmt"
	"log"

	"impulse"
)

// program sums a column of a 256x256 matrix of doubles (stride 2 KB —
// every element lands in its own cache line conventionally).
const program = `
# Fill column 3 of a 256x256 matrix: A[i][3] = i * 0.5
alloc mat 524288
set r1 24            # byte offset of A[0][3]
fset f0 0.0
repeat 256
  storef mat r1 f0
  fadd f0 f0 0.5
  add r1 r1 2048     # next row
end
flush mat 0 524288

impulse
  # Dense alias of the column: 8-byte objects at stride 2048.
  stride col 8 2048 256 0
  retarget col mat 522264 purge 24
  set r1 0
  repeat 256
    loadf f1 col r1
    acc f1
    add r1 r1 8
  end
else
  set r1 24
  repeat 256
    loadf f1 mat r1
    acc f1
    add r1 r1 2048
  end
end
`

func main() {
	log.SetFlags(0)
	prog, err := impulse.ParseScript(program)
	if err != nil {
		log.Fatal(err)
	}
	run := func(kind impulse.Options) impulse.ScriptResult {
		sys, err := impulse.NewSystem(kind)
		if err != nil {
			log.Fatal(err)
		}
		res, err := impulse.RunScript(sys, prog)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	conv := run(impulse.Options{Controller: impulse.Conventional})
	imp := run(impulse.Options{Controller: impulse.Impulse})
	if conv.Checksum != imp.Checksum {
		log.Fatalf("checksums differ: %v vs %v", conv.Checksum, imp.Checksum)
	}
	fmt.Printf("column sum = %v on both machines\n\n", conv.Checksum)
	fmt.Printf("conventional: %7d cycles, %6d bus bytes, L1 %4.1f%%\n",
		conv.Row.Cycles, conv.Row.Stats.BusBytes, conv.Row.L1Ratio*100)
	fmt.Printf("impulse:      %7d cycles, %6d bus bytes, L1 %4.1f%%\n",
		imp.Row.Cycles, imp.Row.Stats.BusBytes, imp.Row.L1Ratio*100)
	fmt.Printf("\nspeedup %.2fx from one script, no Go required\n",
		impulse.Speedup(conv.Row, imp.Row))
}
