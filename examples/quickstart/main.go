// Quickstart: the paper's Figure 1 scenario.
//
// A program sums the diagonal of a dense matrix. On a conventional memory
// system every diagonal element drags a full cache line of its row
// neighbors across the bus; with Impulse, the OS and memory controller
// remap the diagonal into a dense shadow alias, so every transferred byte
// is useful and the diagonal caches densely.
//
// This example shows both levels of the API: the one-call harness
// (impulse.Figure1) and the underlying remapping operations
// (NewStridedAlias / Retarget) used directly.
package main

import (
	"fmt"
	"log"
	"os"

	"impulse"
)

func main() {
	log.SetFlags(0)

	// High-level: regenerate the Figure 1 comparison table.
	if err := impulse.Figure1(512, 4, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Low-level: do the remapping by hand on an Impulse system.
	sys, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		log.Fatal(err)
	}
	const dim = 64
	rowBytes := uint64(dim * 8)
	mat := sys.MustAlloc(uint64(dim)*rowBytes, 0)
	for i := 0; i < dim; i++ {
		// A[i][i] = i — stores run through the simulated hierarchy.
		sys.StoreF64(mat+impulse.VAddr(uint64(i)*rowBytes+uint64(i)*8), float64(i))
	}

	// One descriptor: 8-byte objects, one per matrix row plus one column
	// (the diagonal's stride), packed densely in shadow space.
	diag, err := sys.NewStridedAlias(8, rowBytes+8, dim, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Retarget(diag, mat, uint64(dim)*rowBytes, impulse.Purge); err != nil {
		log.Fatal(err)
	}

	before := sys.Snapshot()
	var sum float64
	for i := 0; i < dim; i++ {
		sum += sys.LoadF64(diag.VA + impulse.VAddr(8*i))
	}
	after := sys.Snapshot()
	fmt.Printf("diagonal sum = %v (expect %v)\n", sum, float64(dim*(dim-1)/2))
	fmt.Printf("%d loads -> %d went to memory (a dense alias: 16 doubles per gathered line)\n",
		after.Loads-before.Loads, after.MemLoads-before.MemLoads)
}
