// Example tiled: the paper's §3.2/§4.2 experiment — dense matrix-matrix
// product with three tiling strategies:
//
//   - conventional no-copy tiling (tiles conflict in the caches),
//   - software tile copying (fast, but pays the copies), and
//   - Impulse tile remapping (no-copy: base-stride descriptors make each
//     tile contiguous in shadow space, and the three tile aliases are
//     pinned to distinct segments of the virtually-indexed L1).
package main

import (
	"fmt"
	"log"

	"impulse"
	"impulse/internal/workloads"
)

func main() {
	log.SetFlags(0)
	par := impulse.MMPParams{N: 256, Tile: 32}
	fmt.Printf("C = A x B, %dx%d doubles, %dx%d tiles\n\n", par.N, par.N, par.Tile, par.Tile)

	run := func(name string, kind impulse.Options, mode workloads.MMPMode) impulse.Row {
		sys, err := impulse.NewSystem(kind)
		if err != nil {
			log.Fatal(err)
		}
		res, err := impulse.RunMMP(sys, par, mode)
		if err != nil {
			log.Fatal(err)
		}
		want := workloads.RefMMP(par)
		if res.Checksum != want {
			log.Fatalf("%s: checksum %v != reference %v", name, res.Checksum, want)
		}
		fmt.Printf("%-24s %s\n", name, res.Row)
		return res.Row
	}

	base := run("no-copy tiled", impulse.Options{Controller: impulse.Conventional}, impulse.MMPNoCopyTiled)
	cp := run("software tile copy", impulse.Options{Controller: impulse.Conventional}, impulse.MMPCopyTiled)
	remap := run("impulse tile remap", impulse.Options{Controller: impulse.Impulse}, impulse.MMPTileRemap)

	fmt.Println()
	fmt.Printf("speedups vs no-copy: copying %.2f, remapping %.2f\n",
		impulse.Speedup(base, cp), impulse.Speedup(base, remap))
	fmt.Println("(the paper's Table 2 reports 1.95 and 1.98 at 512x512; remapping edges out copying)")
}
