// Example lrpc: cross-process no-copy message passing (§6).
//
// "Fast local IPC mechanisms, such as LRPC, use shared memory to map
// buffers into sender and receiver address spaces, and Impulse could be
// used to support fast, no-copy scatter/gather into shared shadow
// address spaces."
//
// A server process scatters a reply across its internal buffers and
// builds a gather alias over them; it grants the shadow region to the
// client, which maps it into its own address space and reads the message
// directly — the gather happens at the memory controller, no bytes are
// copied, and an unauthorized process is refused by the OS.
package main

import (
	"fmt"
	"log"

	"impulse"
)

func main() {
	log.SetFlags(0)
	sys, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		log.Fatal(err)
	}

	// --- Server (process 0) -------------------------------------------
	const n = 1024 // message words
	heap := sys.MustAlloc(n*8*4, 0)
	vec := sys.MustAlloc(n*4, 0)
	for k := uint64(0); k < n; k++ {
		idx := uint32(k * 3) // the message lives in every third heap word
		sys.Store32(vec+impulse.VAddr(4*k), idx)
		sys.StoreF64(heap+impulse.VAddr(8*uint64(idx)), float64(k)*1.25)
	}
	alias, err := sys.MapScatterGather(heap, n*8*4, 8, vec, n, 0)
	if err != nil {
		log.Fatal(err)
	}
	region, err := sys.ShadowRegionOf(alias)
	if err != nil {
		log.Fatal(err)
	}

	client := sys.SpawnProcess()
	intruder := sys.SpawnProcess()
	if err := sys.GrantShadow(region, client); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server built a %d-word gather alias and granted it to process %d\n", n, client)

	// --- Client --------------------------------------------------------
	if err := sys.SwitchProcess(client); err != nil {
		log.Fatal(err)
	}
	msg, err := sys.MapForeignShadow(region, n*8)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	before := sys.Snapshot()
	for k := 0; k < n; k++ {
		sum += sys.LoadF64(msg + impulse.VAddr(8*k))
	}
	after := sys.Snapshot()
	var want float64
	for k := 0; k < n; k++ {
		want += float64(k) * 1.25
	}
	fmt.Printf("client read the message in place: sum=%v (expect %v)\n", sum, want)
	fmt.Printf("  %d loads, %d memory accesses, zero copies\n",
		after.Loads-before.Loads, after.MemLoads-before.MemLoads)

	// --- Intruder ------------------------------------------------------
	if err := sys.SwitchProcess(intruder); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.MapForeignShadow(region, n*8); err != nil {
		fmt.Printf("intruder (process %d) correctly refused: %v\n", intruder, err)
	} else {
		log.Fatal("protection failure: intruder mapped the region")
	}
}
