// Allocation budgets for the simulation hot path and per-cell setup.
// The fast-path access engine only pays off if a simulated L1 hit stays
// allocation-free, and the membuf/kernel pooling only pays off if a
// warm sweep cell stops re-allocating its big buffers; these tests pin
// both so a regression shows up as a test failure, not a slow sweep.
package impulse_test

import (
	"testing"

	"impulse"
	"impulse/internal/obs"
	"impulse/internal/sim"
	"impulse/internal/workloads"
)

// TestSimHotPathAllocs requires the steady-state access path — repeat
// loads and stores hitting the same resident L1 line — to allocate
// nothing at all.
func TestSimHotPathAllocs(t *testing.T) {
	s, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		t.Fatal(err)
	}
	x := s.MustAlloc(4096, 0)
	s.StoreF64(x, 1.5)
	s.LoadF64(x)
	if avg := testing.AllocsPerRun(1000, func() { s.LoadF64(x) }); avg != 0 {
		t.Errorf("L1-hit load allocates %.2f per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { s.StoreF64(x, 2.5) }); avg != 0 {
		t.Errorf("L1-hit store allocates %.2f per op, want 0", avg)
	}
}

// TestSimHotPathAllocsWithHub is the zero-cost-when-disabled guarantee
// for the observability layer at the allocation level: attaching a hub
// with tracing and series disabled (their zero config) must leave the
// steady-state access path at zero allocations per op — every
// instrumentation site reduces to a nil check.
func TestSimHotPathAllocsWithHub(t *testing.T) {
	s, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachObs(obs.New(obs.Config{}))
	x := s.MustAlloc(4096, 0)
	s.StoreF64(x, 1.5)
	s.LoadF64(x)
	if avg := testing.AllocsPerRun(1000, func() { s.LoadF64(x) }); avg != 0 {
		t.Errorf("L1-hit load with hub attached allocates %.2f per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { s.StoreF64(x, 2.5) }); avg != 0 {
		t.Errorf("L1-hit store with hub attached allocates %.2f per op, want 0", avg)
	}
}

// TestCellSetupAllocBudget bounds the allocations of one complete sweep
// cell (system construction, workload run, buffer release) once the
// membuf/kernel pools are warm. The budget is generous — the point is
// to catch a regression back to per-cell page-table and DRAM-frame
// churn (historically ~1.7k allocations per cell), not to pin the exact
// count.
func TestCellSetupAllocBudget(t *testing.T) {
	par := workloads.CGParams{N: 240, Nonzer: 4, Niter: 1, CGIts: 2, Shift: 10, RCond: 0.1}
	m := impulse.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	cell := func() {
		s, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse, Prefetch: impulse.PrefetchMC})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := impulse.RunCG(s, par, impulse.CGScatterGather, m); err != nil {
			t.Fatal(err)
		}
		s.ReleaseBuffers()
	}
	cell() // warm the pools
	const budget = 1200
	if avg := testing.AllocsPerRun(5, cell); avg > budget {
		t.Errorf("warm sweep cell allocates %.0f per run, budget %d", avg, budget)
	}
}

// TestVectorApplyAllocs requires the vectorized replay applier to
// allocate nothing per applied operation: a decoded run of loads and
// stores over resident lines, interleaved with ticks, must commit with
// zero allocations however long it is. This is the per-op half of the
// vector replay budget (the per-batch decode amortizes separately).
func TestVectorApplyAllocs(t *testing.T) {
	s, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		t.Fatal(err)
	}
	x := s.MustAlloc(4096, 0)
	s.SetFunctional(false)
	defer s.SetFunctional(true)
	ap := sim.NewVecApplier(s.Machine)
	defer ap.Close()
	if !ap.Inline() {
		t.Fatal("applier did not engage inline paths on a bare machine")
	}
	const n = 512
	args := make([]uint64, n)
	aux := make([]uint32, n)
	ticks := make([]uint64, 4)
	for i := range args {
		args[i] = uint64(x) + uint64(i%64)*8
		if i%7 == 0 {
			aux[i] = 2
		}
	}
	for i := range ticks {
		ticks[i] = 3
	}
	// Prime residency (first pass faults the lines in through the
	// reference path and populates the fast table).
	ap.ApplyRun(sim.VecLoad64, args, aux)
	for name, run := range map[string]func(){
		"loads":  func() { ap.ApplyRun(sim.VecLoad64, args, aux) },
		"stores": func() { ap.ApplyRun(sim.VecStore64, args, aux) },
		"ticks":  func() { ap.ApplyRun(sim.VecTick, ticks, aux[:4]) },
	} {
		if avg := testing.AllocsPerRun(200, run); avg != 0 {
			t.Errorf("vector %s run allocates %.2f per run, want 0", name, avg)
		}
	}
}
