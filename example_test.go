package impulse_test

import (
	"fmt"
	"log"

	"impulse"
)

// The basic flow: build a system, allocate simulated memory, move data
// through the full TLB/L1/L2/bus/controller/DRAM model.
func ExampleNewSystem() {
	sys, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		log.Fatal(err)
	}
	x := sys.MustAlloc(4096, 0)
	sys.StoreF64(x, 3.5)
	fmt.Println(sys.LoadF64(x))
	fmt.Println(sys.St.Loads, "load issued")
	// Output:
	// 3.5
	// 1 load issued
}

// Scatter/gather remapping (§2.3): x'[k] aliases x[vec[k]], with the
// indirection resolved at the memory controller.
func ExampleSystem_MapScatterGather() {
	sys, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		log.Fatal(err)
	}
	x := sys.MustAlloc(1024*8, 0)
	vec := sys.MustAlloc(4*4, 0)
	for k, idx := range []uint32{700, 3, 512, 41} {
		sys.Store32(vec+impulse.VAddr(4*k), idx)
		sys.StoreF64(x+impulse.VAddr(8*idx), float64(idx))
	}
	alias, err := sys.MapScatterGather(x, 1024*8, 8, vec, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		fmt.Print(sys.LoadF64(alias+impulse.VAddr(8*k)), " ")
	}
	// Output: 700 3 512 41
}

// Page recoloring (§2.3 direct mapping): the data's cache placement
// changes without copying a byte.
func ExampleSystem_Recolor() {
	sys, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		log.Fatal(err)
	}
	x := sys.MustAlloc(16*4096, 0)
	sys.StoreF64(x+8, 2.25)
	if err := sys.Recolor(x, 16*4096, 0, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.LoadF64(x + 8))
	// Output: 2.25
}

// The script front end: one program, both machines.
func ExampleParseScript() {
	prog, err := impulse.ParseScript(`
alloc a 4096
fset f0 1.25
storef a 64 f0
loadf f1 a 64
acc f1
`)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := impulse.NewSystem(impulse.Options{Controller: impulse.Conventional})
	if err != nil {
		log.Fatal(err)
	}
	res, err := impulse.RunScript(sys, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Checksum)
	// Output: 1.25
}
