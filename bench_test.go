// Benchmarks that regenerate every table and figure of the paper's
// evaluation section (one benchmark per table cell), plus host-side
// microbenchmarks of the simulator itself.
//
// Each benchmark iteration runs the complete workload on a fresh
// simulated machine and reports the simulated cycle count as
// "sim-cycles" (the paper's "Time" rows) alongside the usual host
// ns/op. Geometries are reduced from the full cmd/table1 / cmd/table2
// defaults so the whole suite finishes in minutes; the shapes (who wins,
// by roughly what factor) match the bigger runs recorded in
// EXPERIMENTS.md.
package impulse_test

import (
	"context"
	"io"
	"testing"

	"impulse"
	"impulse/internal/core"
	"impulse/internal/harness"
	"impulse/internal/workloads"
)

// benchCG is the Table 1 benchmark geometry: the multiplicand vector
// (64 KB) exceeds the L1 as in the paper's Class A runs.
func benchCG() impulse.CGParams {
	return impulse.CGParams{N: 8192, Nonzer: 6, Niter: 1, CGIts: 4, Shift: 10, RCond: 0.1}
}

var benchMatrix *workloads.SparseMatrix

func cgMatrix(b *testing.B) *workloads.SparseMatrix {
	b.Helper()
	if benchMatrix == nil {
		p := benchCG()
		benchMatrix = impulse.MakeA(p.N, p.Nonzer, p.RCond, p.Shift)
	}
	return benchMatrix
}

func prefetchName(pf core.PrefetchPolicy) string {
	switch pf {
	case impulse.PrefetchNone:
		return "standard"
	case impulse.PrefetchMC:
		return "impulse-prefetch"
	case impulse.PrefetchL1:
		return "l1-prefetch"
	default:
		return "both-prefetch"
	}
}

// BenchmarkTable1 regenerates the paper's Table 1: NAS conjugate
// gradient, 3 memory configurations x 4 prefetch policies.
func BenchmarkTable1(b *testing.B) {
	sections := []struct {
		name string
		mode workloads.CGMode
		kind core.ControllerKind
	}{
		{"conventional", impulse.CGConventional, impulse.Conventional},
		{"scatter-gather", impulse.CGScatterGather, impulse.Impulse},
		{"page-recoloring", impulse.CGRecolor, impulse.Impulse},
	}
	m := cgMatrix(b)
	for _, sec := range sections {
		for _, pf := range []core.PrefetchPolicy{
			impulse.PrefetchNone, impulse.PrefetchMC, impulse.PrefetchL1, impulse.PrefetchBoth,
		} {
			kind := sec.kind
			if pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
				kind = impulse.Impulse
			}
			b.Run(sec.name+"/"+prefetchName(pf), func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					s, err := impulse.NewSystem(impulse.Options{Controller: kind, Prefetch: pf})
					if err != nil {
						b.Fatal(err)
					}
					res, err := impulse.RunCG(s, benchCG(), sec.mode, m)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Row.Cycles
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
			})
		}
	}
}

// BenchmarkTable2 regenerates the paper's Table 2: tiled matrix-matrix
// product, 3 tiling strategies x 4 prefetch policies.
func BenchmarkTable2(b *testing.B) {
	par := impulse.MMPParams{N: 256, Tile: 32}
	sections := []struct {
		name string
		mode workloads.MMPMode
		kind core.ControllerKind
	}{
		{"no-copy-tiled", impulse.MMPNoCopyTiled, impulse.Conventional},
		{"tile-copying", impulse.MMPCopyTiled, impulse.Conventional},
		{"tile-remapping", impulse.MMPTileRemap, impulse.Impulse},
	}
	for _, sec := range sections {
		for _, pf := range []core.PrefetchPolicy{
			impulse.PrefetchNone, impulse.PrefetchMC, impulse.PrefetchL1, impulse.PrefetchBoth,
		} {
			kind := sec.kind
			if pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
				kind = impulse.Impulse
			}
			b.Run(sec.name+"/"+prefetchName(pf), func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					s, err := impulse.NewSystem(impulse.Options{Controller: kind, Prefetch: pf})
					if err != nil {
						b.Fatal(err)
					}
					res, err := impulse.RunMMP(s, par, sec.mode)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Row.Cycles
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
			})
		}
	}
}

// BenchmarkFigure1Diagonal quantifies the paper's Figure 1 example.
func BenchmarkFigure1Diagonal(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		impulse bool
		kind    core.ControllerKind
	}{
		{"conventional", false, impulse.Conventional},
		{"impulse", true, impulse.Impulse},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := impulse.NewSystem(impulse.Options{Controller: cfg.kind})
				if err != nil {
					b.Fatal(err)
				}
				res, err := impulse.RunDiagonal(s, 512, 4, cfg.impulse)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Row.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkIPCGather is the §6 message-assembly scenario.
func BenchmarkIPCGather(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		impulse bool
		kind    core.ControllerKind
	}{
		{"software", false, impulse.Conventional},
		{"impulse", true, impulse.Impulse},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := impulse.NewSystem(impulse.Options{Controller: cfg.kind})
				if err != nil {
					b.Fatal(err)
				}
				res, err := impulse.RunIPC(s, 32, 1024, 2, cfg.impulse)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Row.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkSuperpage is the [21] extension: TLB-miss elimination via
// shadow-backed superpages.
func BenchmarkSuperpage(b *testing.B) {
	for _, super := range []bool{false, true} {
		name := "4k-pages"
		if super {
			name = "superpage"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := harness.SuperpageExperiment(context.Background(), 1024, 2, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulerAblation compares the in-order DRAM scheduler the
// paper evaluated with the reordering scheduler it sketched (§2.2).
// The trace cache is reset each iteration so every iteration measures
// the one-shot record-plus-replay cost, not warm-cache replay.
func BenchmarkSchedulerAblation(b *testing.B) {
	par := impulse.CGParams{N: 2048, Nonzer: 5, Niter: 1, CGIts: 2, Shift: 10, RCond: 0.1}
	for i := 0; i < b.N; i++ {
		harness.ResetTraceCache()
		if err := harness.SchedulerAblation(context.Background(), par, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTable1Family runs the full Table 1 family (12 cells spanning 3
// reference streams) with the trace cache on or off. With the cache on,
// each stream executes once under a recorder and the other nine cells
// replay; the cache is reset per iteration so the recording cost is
// included every time.
func benchTable1Family(b *testing.B, cacheOn bool) {
	was := harness.TraceCacheEnabled()
	defer harness.SetTraceCache(was)
	harness.SetTraceCache(cacheOn)
	par := impulse.CGParams{N: 2048, Nonzer: 5, Niter: 1, CGIts: 2, Shift: 10, RCond: 0.1}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.ResetTraceCache()
		g, err := impulse.Table1(par, nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles = g.Baseline().Row.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkTable1TraceCacheOn and ...Off measure the tentpole
// optimisation: the same sweep family with and without trace-cached
// replay. Output is byte-identical either way (the differential tests
// in internal/tracefile pin that); only the wall clock differs.
func BenchmarkTable1TraceCacheOn(b *testing.B)  { benchTable1Family(b, true) }
func BenchmarkTable1TraceCacheOff(b *testing.B) { benchTable1Family(b, false) }

// --- Host-side microbenchmarks of the simulator itself -----------------

// BenchmarkSimL1Hit measures the host cost of a simulated L1 load hit.
func BenchmarkSimL1Hit(b *testing.B) {
	s, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		b.Fatal(err)
	}
	x := s.MustAlloc(4096, 0)
	s.LoadF64(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LoadF64(x)
	}
}

// BenchmarkSimMemoryMiss measures the host cost of a simulated full
// memory access (cold line each time).
func BenchmarkSimMemoryMiss(b *testing.B) {
	s, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		b.Fatal(err)
	}
	const span = 8 << 20
	x := s.MustAlloc(span, 0)
	b.ResetTimer()
	off := uint64(0)
	for i := 0; i < b.N; i++ {
		s.LoadF64(x + impulse.VAddr(off))
		off = (off + 4096) % span
	}
}

// BenchmarkSimGatherLine measures the host cost of one gathered shadow
// line (16 scattered elements through descriptor, PgTbl, and DRAM).
func BenchmarkSimGatherLine(b *testing.B) {
	s, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 16
	x := s.MustAlloc(n*8, 0)
	vec := s.MustAlloc(n*4, 0)
	for k := uint64(0); k < n; k++ {
		s.Store32(vec+impulse.VAddr(4*k), uint32((k*97)%n))
	}
	alias, err := s.MapScatterGather(x, n*8, 8, vec, n, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i*16) % n
		s.LoadF64(alias + impulse.VAddr(8*k))
	}
}

// BenchmarkCholesky covers the §3.2 extension kernel.
func BenchmarkCholesky(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mode workloads.CholeskyMode
		kind core.ControllerKind
	}{
		{"no-copy", workloads.CholNoCopy, impulse.Conventional},
		{"copy", workloads.CholCopy, impulse.Conventional},
		{"remap", workloads.CholRemap, impulse.Impulse},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := impulse.NewSystem(impulse.Options{Controller: cfg.kind})
				if err != nil {
					b.Fatal(err)
				}
				res, err := workloads.RunCholesky(s, 256, 32, cfg.mode)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Row.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkSpark covers the §3.1 Spark98-style extension.
func BenchmarkSpark(b *testing.B) {
	mesh := workloads.MakeSparkMesh(120, 120)
	for _, cfg := range []struct {
		name   string
		gather bool
		kind   core.ControllerKind
		pf     core.PrefetchPolicy
	}{
		{"conventional", false, impulse.Conventional, impulse.PrefetchNone},
		{"scatter-gather", true, impulse.Impulse, impulse.PrefetchMC},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := impulse.NewSystem(impulse.Options{Controller: cfg.kind, Prefetch: cfg.pf})
				if err != nil {
					b.Fatal(err)
				}
				res, err := workloads.RunSpark(s, mesh, 1, cfg.gather)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Row.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkDBScan covers the abstract's database claim.
func BenchmarkDBScan(b *testing.B) {
	p := workloads.DBParams{Records: 16 << 10, RecordBytes: 64, FieldOffset: 16}
	for _, cfg := range []struct {
		name    string
		impulse bool
		kind    core.ControllerKind
	}{
		{"projection-conventional", false, impulse.Conventional},
		{"projection-impulse", true, impulse.Impulse},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s, err := impulse.NewSystem(impulse.Options{Controller: cfg.kind, Prefetch: impulse.PrefetchMC})
				if err != nil {
					b.Fatal(err)
				}
				res, err := workloads.RunDBProjection(s, p, cfg.impulse)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Row.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkScriptEngine measures the script front end's host overhead.
func BenchmarkScriptEngine(b *testing.B) {
	prog, err := impulse.ParseScript(`
alloc a 65536
set r1 0
repeat 8192
  store64 a r1 r1
  add r1 r1 8
end
set r1 0
repeat 8192
  load64 r2 a r1
  add r1 r1 8
end
`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := impulse.RunScript(s, prog); err != nil {
			b.Fatal(err)
		}
	}
}
