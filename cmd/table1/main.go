// Command table1 regenerates the paper's Table 1: the NAS conjugate
// gradient benchmark under three memory-system configurations
// (conventional, Impulse scatter/gather, Impulse page recoloring) and
// four prefetch policies (none, controller, L1 cache, both).
//
// The default geometry keeps the paper's Class A matrix dimension
// (n=14000, so the multiplicand exceeds the L1 as in the paper) with
// reduced nonzeros/row and iteration count; -full runs the complete 25
// inner iterations. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"impulse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table1: ")
	par := impulse.CGPaperGeometry()
	n := flag.Int("n", par.N, "matrix dimension")
	nonzer := flag.Int("nonzer", par.Nonzer, "nonzeros per generated sparse vector")
	niter := flag.Int("niter", par.Niter, "outer iterations")
	cgits := flag.Int("cgits", 8, "inner CG iterations per solve (paper: 25)")
	full := flag.Bool("full", false, "run the full 25 inner iterations")
	shift := flag.Float64("shift", par.Shift, "diagonal shift")
	quiet := flag.Bool("q", false, "suppress progress output")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of the text table")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for table cells (output is identical for any value)")
	traceCache := flag.Bool("trace-cache", true, "record each reference stream once and replay it for the other prefetch columns")
	vectorReplay := flag.Bool("vector-replay", true, "replay each column family through one shared trace decode (needs -trace-cache)")
	traceRecord := flag.String("trace-record", "", "persist recorded traces to this directory")
	traceReplay := flag.String("trace-replay", "", "load previously persisted traces from this directory")
	flag.Parse()
	impulse.SetWorkers(*jobs)
	impulse.SetTraceCache(*traceCache)
	impulse.SetVectorReplay(*vectorReplay)
	impulse.SetTraceRecordDir(*traceRecord)
	impulse.SetTraceReplayDir(*traceReplay)

	par.N, par.Nonzer, par.Niter, par.CGIts, par.Shift = *n, *nonzer, *niter, *cgits, *shift
	if *full {
		par.CGIts = 25
	}

	progress := func(section, column string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s / %s ...\n", section, column)
		}
	}
	grid, err := impulse.Table1(par, progress)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		if err := grid.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := grid.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
