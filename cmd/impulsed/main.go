// Command impulsed is the Impulse experiment service: a long-lived
// daemon that accepts experiment specs over HTTP/JSON, runs them on a
// bounded job queue over the shared simulation harness, deduplicates
// identical in-flight submissions single-flight style, caches results
// by canonical spec hash, and streams live progress over SSE. Results
// persist in a content-addressed store under -archive-dir, so a
// restarted daemon serves yesterday's cache hits from disk. With
// -route it instead fronts a fleet of worker daemons, routing every
// submission by spec hash (docs/FLEET.md). See docs/SERVICE.md for the
// API, docs/OBSERVABILITY.md for metrics, timelines, and manifests,
// and cmd/impulsectl for a client.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"flag"

	"impulse"
	"impulse/internal/fleet"
	"impulse/internal/obs"
	"impulse/internal/service"
)

// warnWriter adapts obs.SetWarnOutput's io.Writer contract to the
// structured logger: each one-shot advisory becomes a WARN record
// instead of a bare stderr line.
type warnWriter struct{ log *slog.Logger }

func (w warnWriter) Write(p []byte) (int, error) {
	w.log.Warn(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once bound")
	queueDepth := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	executors := flag.Int("exec", 2, "jobs running concurrently")
	cacheSize := flag.Int("cache", 128, "finished jobs kept for result reuse")
	archiveBytes := flag.Int64("archive-bytes", 256<<20, "byte budget for archived columnar result blobs (LRU evicts beyond it)")
	archiveDir := flag.String("archive-dir", "", "directory for archived result blobs (empty: private temp dir, removed on exit)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "harness worker goroutines per running job")
	traceCache := flag.Bool("trace-cache", true, "share recorded reference streams across cells and jobs")
	vectorReplay := flag.Bool("vector-replay", true, "replay each cell family through one shared trace decode (needs -trace-cache)")
	traceRecord := flag.String("trace-record", "", "persist recorded traces to this directory")
	traceReplay := flag.String("trace-replay", "", "load previously persisted traces from this directory")
	traceDir := flag.String("trace-dir", "", "shorthand for -trace-record and -trace-replay on one directory (the fleet's shared trace cache)")
	route := flag.String("route", "", "comma-separated shard URLs (name=url or bare url): serve as a fleet router over these backends instead of executing locally")
	cyclesPerSec := flag.Float64("fleet-cycles-per-sec", 0, "with -route: simulated cycles one shard executor burns per wall second (Retry-After calibration; 0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long graceful shutdown waits for in-flight jobs")
	slowJob := flag.Duration("slow-job", time.Minute, "warn about jobs whose execution exceeds this (0 disables)")
	logFormat := flag.String("log-format", "json", "log output format: json or text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "impulsed: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, hopts)
	default:
		fmt.Fprintf(os.Stderr, "impulsed: bad -log-format %q (json|text)\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)
	slog.SetDefault(log)

	if *traceDir != "" {
		if *traceRecord == "" {
			*traceRecord = *traceDir
		}
		if *traceReplay == "" {
			*traceReplay = *traceDir
		}
	}
	impulse.SetWorkers(*jobs)
	impulse.SetTraceCache(*traceCache)
	impulse.SetVectorReplay(*vectorReplay)
	impulse.SetTraceRecordDir(*traceRecord)
	impulse.SetTraceReplayDir(*traceReplay)
	// Route one-shot advisory notes (e.g. trace-cache ineligibility)
	// through the structured log instead of bare stderr. Notes fired
	// inside a job carry its id (obs.WarnOnceCtx).
	obs.SetWarnOutput(warnWriter{log})

	svc := service.New(service.Config{
		QueueDepth:       *queueDepth,
		Executors:        *executors,
		CacheSize:        *cacheSize,
		CacheBytes:       *archiveBytes,
		ArchiveDir:       *archiveDir,
		Logger:           log,
		SlowJobThreshold: *slowJob,
	})

	// Router mode: the daemon fronts N worker impulsed backends, routing
	// submissions by spec hash; its own service stays for the twin tier.
	var rt *fleet.Router
	httpHandler := svc.Handler()
	if *route != "" {
		var shards []fleet.ShardConfig
		for i, f := range strings.Split(*route, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			sc := fleet.ShardConfig{Name: fmt.Sprintf("s%d", i), URL: f}
			if name, u, ok := strings.Cut(f, "="); ok && !strings.Contains(name, "/") {
				sc.Name, sc.URL = name, u
			}
			shards = append(shards, sc)
		}
		var err error
		rt, err = fleet.New(fleet.Config{
			Shards:          shards,
			Local:           svc,
			CyclesPerSecond: *cyclesPerSec,
			Logger:          log,
		})
		if err != nil {
			log.Error("fleet setup", "err", err)
			os.Exit(1)
		}
		httpHandler = rt.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	actual := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(actual+"\n"), 0o644); err != nil {
			log.Error("writing addr file", "path", *addrFile, "err", err)
			os.Exit(1)
		}
	}
	if rt != nil {
		log.Info("routing", "url", "http://"+actual, "shards", *route)
	}
	log.Info("listening", "url", "http://"+actual, "queue", *queueDepth, "exec", *executors,
		"cache", *cacheSize, "archive_bytes", *archiveBytes, "workers", *jobs,
		"trace_cache", *traceCache, "slow_job", slowJob.String())

	srv := &http.Server{Handler: httpHandler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}

	log.Info("shutting down", "drain_timeout", drainTimeout.String())
	if rt != nil {
		rt.Close()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Warn("drain", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	fmt.Fprintln(os.Stderr, "impulsed: bye")
}
