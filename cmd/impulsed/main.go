// Command impulsed is the Impulse experiment service: a long-lived
// daemon that accepts experiment specs over HTTP/JSON, runs them on a
// bounded job queue over the shared simulation harness, deduplicates
// identical in-flight submissions single-flight style, caches results
// by canonical spec hash, and streams live progress over SSE. See
// docs/SERVICE.md for the API and cmd/impulsectl for a client.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"impulse"
	"impulse/internal/obs"
	"impulse/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("impulsed: ")
	addr := flag.String("addr", "127.0.0.1:7777", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once bound")
	queueDepth := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	executors := flag.Int("exec", 2, "jobs running concurrently")
	cacheSize := flag.Int("cache", 128, "finished jobs kept for result reuse")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "harness worker goroutines per running job")
	traceCache := flag.Bool("trace-cache", true, "share recorded reference streams across cells and jobs")
	traceRecord := flag.String("trace-record", "", "persist recorded traces to this directory")
	traceReplay := flag.String("trace-replay", "", "load previously persisted traces from this directory")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long graceful shutdown waits for in-flight jobs")
	flag.Parse()

	impulse.SetWorkers(*jobs)
	impulse.SetTraceCache(*traceCache)
	impulse.SetTraceRecordDir(*traceRecord)
	impulse.SetTraceReplayDir(*traceReplay)
	// Route one-shot advisory notes (e.g. trace-cache ineligibility)
	// through the daemon log instead of bare stderr.
	obs.SetWarnOutput(log.Writer())

	svc := service.New(service.Config{
		QueueDepth: *queueDepth,
		Executors:  *executors,
		CacheSize:  *cacheSize,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	actual := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(actual+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("listening on http://%s (queue=%d exec=%d cache=%d workers=%d trace-cache=%t)",
		actual, *queueDepth, *executors, *cacheSize, *jobs, *traceCache)

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-sigCtx.Done():
	}

	log.Printf("shutting down: draining in-flight jobs (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "impulsed: bye")
}
