// Command impulsectl is the client for the impulsed experiment
// service. It submits experiment specs, polls status, fetches results,
// counters, provenance manifests, and Perfetto timelines, cancels jobs,
// tails live progress over SSE, load-tests the daemon's single-flight
// dedup path, and renders a polling terminal dashboard over /metrics.
//
// Usage:
//
//	impulsectl [-addr host:port] submit [-wait] [-counters] (-spec JSON | -f spec.json)
//	impulsectl [-addr host:port] predict [-family NAME] [-fast] [-spec JSON | -f spec.json]
//	impulsectl [-addr host:port] status <job-id>
//	impulsectl [-addr host:port] result [-counters] [-format VIEW] <job-id>
//	impulsectl [-addr host:port] manifest [-wait] <job-id>
//	impulsectl [-addr host:port] trace [-o FILE] <job-id>
//	impulsectl [-addr host:port] cancel <job-id>
//	impulsectl [-addr host:port] watch  <job-id>
//	impulsectl [-addr host:port] load [-n 8] [-tier twin] [-spec JSON | -f spec.json]
//	impulsectl [-addr host:port] saturate [-rates 500,1000,...] [-duration 3s] [-o FILE]
//	impulsectl [-addr host:port] metrics [-plain]
//	impulsectl [-addr host:port] top [-interval 2s] [-once]
package main

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"impulse/internal/colres"
	"impulse/internal/obs"
)

var base string

func main() {
	log.SetFlags(0)
	log.SetPrefix("impulsectl: ")
	addr := flag.String("addr", "127.0.0.1:7777", "impulsed address")
	flag.Usage = usage
	flag.Parse()
	base = "http://" + *addr
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(args[1:])
	case "predict":
		err = cmdPredict(args[1:])
	case "status":
		err = cmdStatus(args[1:])
	case "result":
		err = cmdResult(args[1:])
	case "cancel":
		err = cmdCancel(args[1:])
	case "watch":
		err = cmdWatch(args[1:])
	case "load":
		err = cmdLoad(args[1:])
	case "saturate":
		err = cmdSaturate(args[1:])
	case "manifest":
		err = cmdManifest(args[1:])
	case "trace":
		err = cmdTrace(args[1:])
	case "metrics":
		err = cmdMetrics(args[1:])
	case "top":
		err = cmdTop(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: impulsectl [-addr host:port] <command> [flags]

commands:
  submit   -spec JSON | -f FILE   submit a job (add -wait to block and print the result)
  predict  -family NAME [-fast]   answer a sweep from its analytical twin (POST /v1/predict;
                                  synchronous, microseconds; -spec/-f for a full spec)
  status   <job-id>               print job status JSON
  result   <job-id>               print result bytes (-counters for the counter dump;
                                  -format columnar|json|text|svg for a columnar view)
  manifest <job-id>               print the job's provenance manifest JSON (-wait to block)
  trace    <job-id>               print the job's Perfetto timeline JSON (-o FILE to save)
  cancel   <job-id>               cancel a queued or running job
  watch    <job-id>               stream progress events (SSE)
  load     -n N [-spec ...]       submit N identical specs concurrently; verify single-flight
                                  (-tier twin bursts the analytical tier: zero executions)
  saturate -rates R1,R2,...       sweep open-loop arrival rates against a warmed daemon or
                                  fleet; report served req/s, p50/p99, and the saturation knee
                                  (-o FILE merges benchjson Saturate/ records for committing)
  metrics                         dump /metrics (Prometheus format; -plain for name/value lines)
  top                             polling dashboard: queue, cache hit rate, latency quantiles
`)
}

// specBytes resolves the -spec / -f pair into the request body.
func specBytes(spec, file string) ([]byte, error) {
	switch {
	case spec != "" && file != "":
		return nil, fmt.Errorf("-spec and -f are mutually exclusive")
	case spec != "":
		return []byte(spec), nil
	case file != "":
		return os.ReadFile(file)
	default:
		return nil, fmt.Errorf("need -spec JSON or -f FILE")
	}
}

type jobStatus struct {
	ID      string          `json:"id"`
	State   string          `json:"state"`
	Hash    string          `json:"hash"`
	Error   string          `json:"error,omitempty"`
	Deduped bool            `json:"deduped,omitempty"`
	Spec    json.RawMessage `json:"spec"`
}

func decodeError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func postJob(body []byte) (jobStatus, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return jobStatus{}, decodeError(resp, data)
	}
	var st jobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return jobStatus{}, fmt.Errorf("bad response: %v", err)
	}
	return st, nil
}

// postJobStatus submits without folding HTTP rejections into the error:
// err covers transport and decode failures only, and the status code is
// returned so load generators can account 429s separately from the
// latency percentiles of accepted requests.
func postJobStatus(body []byte) (jobStatus, int, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobStatus{}, 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return jobStatus{}, resp.StatusCode, nil
	}
	var st jobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return jobStatus{}, resp.StatusCode, fmt.Errorf("bad response: %v", err)
	}
	return st, resp.StatusCode, nil
}

// fetchResult retrieves a terminal job's payload, long-polling until it
// finishes when wait is true.
func fetchResult(id, path string, wait bool) ([]byte, error) {
	for {
		url := base + "/v1/jobs/" + id + path
		if wait {
			if strings.Contains(path, "?") {
				url += "&wait=30s"
			} else {
				url += "?wait=30s"
			}
		}
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return data, nil
		case http.StatusAccepted:
			if !wait {
				return nil, fmt.Errorf("job %s still pending (use submit -wait or result after it finishes)", id)
			}
		default:
			return nil, decodeError(resp, data)
		}
	}
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	spec := fs.String("spec", "", "inline JSON spec")
	file := fs.String("f", "", "spec file")
	wait := fs.Bool("wait", false, "block until the job finishes and print its result")
	counters := fs.Bool("counters", false, "with -wait: print the counter dump instead of the result")
	fs.Parse(args)
	body, err := specBytes(*spec, *file)
	if err != nil {
		return err
	}
	st, err := postJob(body)
	if err != nil {
		return err
	}
	if !*wait {
		fmt.Printf("%s\t%s\thash=%s\tdeduped=%t\n", st.ID, st.State, st.Hash, st.Deduped)
		return nil
	}
	fmt.Fprintf(os.Stderr, "impulsectl: %s submitted (hash=%s deduped=%t), waiting...\n", st.ID, st.Hash, st.Deduped)
	path := "/result"
	if *counters {
		path = "/counters"
	}
	data, err := fetchResult(st.ID, path, true)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// cmdPredict asks the daemon's analytical-twin tier for an instant
// sweep answer. Unlike submit, there is no job to poll: the response is
// the prediction itself, with tier and error-bound provenance.
func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	family := fs.String("family", "", "sweep family to predict (twin-eligible families only)")
	fast := fs.Bool("fast", false, "predict the family's reduced geometry")
	spec := fs.String("spec", "", "inline JSON spec (alternative to -family/-fast)")
	file := fs.String("f", "", "spec file")
	fs.Parse(args)
	body := []byte(fmt.Sprintf(`{"kind":"sweep","family":%q,"fast":%t}`, *family, *fast))
	if *spec != "" || *file != "" {
		var err error
		if body, err = specBytes(*spec, *file); err != nil {
			return err
		}
	} else if *family == "" {
		return fmt.Errorf("need -family NAME (or -spec/-f)")
	}
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, data)
	}
	_, err = os.Stdout.Write(data)
	return err
}

func cmdStatus(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: status <job-id>")
	}
	resp, err := http.Get(base + "/v1/jobs/" + args[0])
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, data)
	}
	_, err = os.Stdout.Write(data)
	return err
}

func cmdResult(args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	counters := fs.Bool("counters", false, "print the counter dump instead of the rendered result")
	wait := fs.Bool("wait", false, "block until the job finishes")
	format := fs.String("format", "", "render this view of the columnar result: columnar, json, text, or svg (grid kinds only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: result [-counters] [-wait] [-format VIEW] <job-id>")
	}
	path := "/result"
	switch {
	case *counters:
		path = "/counters"
	case *format != "":
		// The daemon renders the view lazily from the archived columns;
		// -format=columnar streams the raw mapped blob.
		path = "/result?view=" + *format
	}
	data, err := fetchResult(fs.Arg(0), path, *wait)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

func cmdCancel(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cancel <job-id>")
	}
	resp, err := http.Post(base+"/v1/jobs/"+args[0]+"/cancel", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, data)
	}
	_, err = os.Stdout.Write(data)
	return err
}

// cmdWatch tails a job's SSE stream, printing one line per event, and
// returns once the job reaches a terminal state.
func cmdWatch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: watch <job-id>")
	}
	resp, err := http.Get(base + "/v1/jobs/" + args[0] + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return decodeError(resp, data)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Seq     int    `json:"seq"`
			Type    string `json:"type"`
			State   string `json:"state"`
			Section string `json:"section"`
			Column  string `json:"column"`
			Label   string `json:"label"`
			Chunk   string `json:"chunk"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		switch ev.Type {
		case "state":
			fmt.Printf("[%03d] state: %s\n", ev.Seq, ev.State)
		case "progress":
			fmt.Printf("[%03d] %s / %s\n", ev.Seq, ev.Section, ev.Column)
		case "cell":
			// Incremental columnar row chunk: decode and summarize the
			// cell's metrics as they land, before the job finishes.
			raw, err := base64.StdEncoding.DecodeString(ev.Chunk)
			if err != nil {
				fmt.Printf("[%03d] cell %s (undecodable chunk: %v)\n", ev.Seq, ev.Label, err)
				continue
			}
			row, err := colres.DecodeRow(raw)
			if err != nil {
				fmt.Printf("[%03d] cell %s (bad chunk: %v)\n", ev.Seq, ev.Label, err)
				continue
			}
			fmt.Printf("[%03d] cell %s: cycles=%d L1=%.1f%% avg=%.2f p50/95/99=%d/%d/%d\n",
				ev.Seq, row.Label, row.Cycles, row.L1*100, row.AvgLoad, row.P50, row.P95, row.P99)
		}
	}
	return sc.Err()
}

// metric reads one scalar from the daemon's legacy plain exposition
// (the Prometheus format is the /metrics default since the typed
// registry landed; scripts keyed on exact names use ?format=plain).
func metric(name string) (uint64, error) {
	resp, err := http.Get(base + "/metrics?format=plain")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			return strconv.ParseUint(fields[1], 10, 64)
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// cmdLoad submits n copies of the same spec concurrently and verifies
// the single-flight guarantee: every submission lands on one job, every
// result is byte-identical, and service.jobs_executed rises by exactly
// one (unless the spec was already cached, in which case by zero).
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	n := fs.Int("n", 8, "concurrent identical submissions")
	spec := fs.String("spec", "", "inline JSON spec")
	file := fs.String("f", "", "spec file")
	tier := fs.String("tier", "", `serving tier merged into the spec (e.g. "twin")`)
	fs.Parse(args)
	if *spec == "" && *file == "" {
		// Defaults sized to finish fast: a small Table 1 grid, or a
		// twin-eligible sweep when the burst targets the analytical tier.
		*spec = `{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}`
		if *tier != "" {
			*spec = `{"kind":"sweep","family":"sram","fast":true}`
		}
	}
	body, err := specBytes(*spec, *file)
	if err != nil {
		return err
	}
	if *tier != "" {
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			return fmt.Errorf("bad spec for -tier merge: %v", err)
		}
		m["tier"] = *tier
		if body, err = json.Marshal(m); err != nil {
			return err
		}
	}
	// A fleet router's /metrics has no service.jobs_executed (executions
	// happen on the shards); the execution-count check is skipped there
	// and the smoke tests sum the shard-side counters instead.
	before, execErr := metric("service.jobs_executed")

	// Per-request latency of this client's own stream (submits and
	// result fetches), bucketed the same way the daemon buckets its
	// histograms so the p50/p95/p99 summary matches what a scrape of
	// service.http_request_duration_us would show for this burst. Only
	// accepted (2xx) requests are observed: a router's 429 returns in
	// microseconds and would drag the percentiles toward zero, so
	// rejections are reported as their own error-rate line instead.
	var lat obs.Histogram
	observe := func(start time.Time) { lat.Observe(uint64(time.Since(start).Microseconds())) }

	ids := make([]string, *n)
	codes := make([]int, *n)
	errs := make([]error, *n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			st, code, err := postJobStatus(body)
			if code/100 == 2 && err == nil {
				observe(t0)
			}
			ids[i], codes[i], errs[i] = st.ID, code, err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var okIdx []int
	rejected := map[int]int{} // status -> count
	for i, code := range codes {
		if code/100 == 2 {
			okIdx = append(okIdx, i)
		} else {
			rejected[code]++
		}
	}
	if len(okIdx) == 0 {
		return fmt.Errorf("all %d submissions rejected: %s", *n, fmtStatuses(rejected))
	}
	first := ids[okIdx[0]]
	for _, i := range okIdx[1:] {
		if ids[i] != first {
			return fmt.Errorf("single-flight violated: got distinct jobs %s and %s", first, ids[i])
		}
	}

	results := make([][]byte, len(okIdx))
	ferrs := make([]error, len(okIdx))
	for k := range okIdx {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			t0 := time.Now()
			results[k], ferrs[k] = fetchResult(first, "/result", true)
			if ferrs[k] == nil {
				observe(t0)
			}
		}(k)
	}
	wg.Wait()
	for _, err := range ferrs {
		if err != nil {
			return err
		}
	}
	for k, r := range results[1:] {
		if !bytes.Equal(r, results[0]) {
			return fmt.Errorf("result divergence: fetch %d differs from fetch 0", k+1)
		}
	}

	execs := "executions n/a (routed)"
	if execErr == nil {
		after, err := metric("service.jobs_executed")
		if err != nil {
			return err
		}
		delta := after - before
		if delta > 1 {
			return fmt.Errorf("single-flight violated: %d submissions caused %d executions", len(okIdx), delta)
		}
		execs = fmt.Sprintf("%d execution(s)", delta)
	}
	fmt.Printf("load ok: %d/%d submissions accepted -> job %s, %s, %d identical bytes each, %.2fs\n",
		len(okIdx), *n, first, execs, len(results[0]), time.Since(start).Seconds())
	if len(rejected) > 0 {
		errRate := float64(*n-len(okIdx)) / float64(*n) * 100
		fmt.Printf("errors: %d/%d non-2xx (%.1f%%): %s — excluded from latency percentiles\n",
			*n-len(okIdx), *n, errRate, fmtStatuses(rejected))
	}
	snap := lat.Snapshot()
	fmt.Printf("request latency (%d accepted requests): p50<=%s p95<=%s p99<=%s\n",
		snap.Count, fmtUS(snap.Quantile(50)), fmtUS(snap.Quantile(95)), fmtUS(snap.Quantile(99)))
	return nil
}

// fmtStatuses renders a status->count map as "429 x3, 503 x1".
func fmtStatuses(m map[int]int) string {
	codes := make([]int, 0, len(m))
	for c := range m {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	parts := make([]string, 0, len(codes))
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d x%d", c, m[c]))
	}
	return strings.Join(parts, ", ")
}

// fmtUS renders a microsecond quantity with a human unit.
func fmtUS(us uint64) string {
	return time.Duration(us * uint64(time.Microsecond)).Round(time.Microsecond).String()
}
