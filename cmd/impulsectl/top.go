// The observability subcommands: `metrics` (raw scrape), `manifest` and
// `trace` (per-job provenance and Perfetto timeline), and `top`, a
// polling terminal dashboard built from the daemon's Prometheus
// exposition — queue depth, in-flight work, cache hit rate, and latency
// quantiles recovered from the power-of-two histogram buckets.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func cmdManifest(args []string) error {
	fs := flag.NewFlagSet("manifest", flag.ExitOnError)
	wait := fs.Bool("wait", false, "block until the job finishes")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: manifest [-wait] <job-id>")
	}
	data, err := fetchResult(fs.Arg(0), "/manifest", *wait)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "", "write the timeline JSON to FILE (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: trace [-o FILE] <job-id>")
	}
	resp, err := http.Get(base + "/v1/jobs/" + fs.Arg(0) + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, data)
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "impulsectl: wrote %s (open in ui.perfetto.dev)\n", *out)
		return nil
	}
	_, err = os.Stdout.Write(data)
	return err
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	plain := fs.Bool("plain", false, "legacy \"name value\" format instead of Prometheus exposition")
	fs.Parse(args)
	url := base + "/metrics"
	if *plain {
		url += "?format=plain"
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return decodeError(resp, data)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// promSample is one parsed exposition line: name{labels} value.
type promSample struct {
	name   string
	labels map[string]string
	value  uint64
}

// parseProm parses the subset of the Prometheus text format the daemon
// emits: integer-valued samples with at most two label pairs, comments
// skipped. Unparseable lines are ignored (forward compatibility).
func parseProm(text string) []promSample {
	var out []promSample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil {
			continue
		}
		s := promSample{labels: map[string]string{}, value: val}
		if br := strings.IndexByte(series, '{'); br >= 0 {
			s.name = series[:br]
			body := strings.TrimSuffix(series[br+1:], "}")
			for _, pair := range strings.Split(body, ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					continue
				}
				k := pair[:eq]
				v := strings.Trim(pair[eq+1:], `"`)
				s.labels[k] = v
			}
		} else {
			s.name = series
		}
		out = append(out, s)
	}
	return out
}

// promSnapshot indexes a scrape for the dashboard: scalars by name, and
// histogram bucket series by (family, label value).
type promSnapshot struct {
	scalars map[string]uint64
	hists   map[string]*promHist // "family|labelval"
}

type promHist struct {
	family   string
	labelVal string
	les      []float64 // bucket upper bounds, ascending; +Inf last
	cums     []uint64  // cumulative counts, parallel to les
	count    uint64
	sum      uint64
}

// quantile recovers an upper bound for the p-th percentile from the
// cumulative buckets (the daemon's power-of-two bounds, so the answer is
// exact to within a factor of two — good enough for a dashboard).
func (h *promHist) quantile(p float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	for i, c := range h.cums {
		if c >= rank {
			return h.les[i]
		}
	}
	return math.Inf(1)
}

func snapshotProm(samples []promSample) *promSnapshot {
	snap := &promSnapshot{scalars: map[string]uint64{}, hists: map[string]*promHist{}}
	histAt := func(family, lv string) *promHist {
		key := family + "|" + lv
		h := snap.hists[key]
		if h == nil {
			h = &promHist{family: family, labelVal: lv}
			snap.hists[key] = h
		}
		return h
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			family := strings.TrimSuffix(s.name, "_bucket")
			le := s.labels["le"]
			lv := ""
			for k, v := range s.labels {
				if k != "le" {
					lv = v
				}
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				if f, err := strconv.ParseFloat(le, 64); err == nil {
					bound = f
				}
			}
			h := histAt(family, lv)
			h.les = append(h.les, bound)
			h.cums = append(h.cums, s.value)
		case strings.HasSuffix(s.name, "_count"):
			family := strings.TrimSuffix(s.name, "_count")
			lv := ""
			for _, v := range s.labels {
				lv = v
			}
			histAt(family, lv).count = s.value
		case strings.HasSuffix(s.name, "_sum"):
			family := strings.TrimSuffix(s.name, "_sum")
			lv := ""
			for _, v := range s.labels {
				lv = v
			}
			histAt(family, lv).sum = s.value
		case len(s.labels) == 0:
			snap.scalars[s.name] = s.value
		}
	}
	// Buckets arrive in emission order (ascending le); sort defensively.
	for _, h := range snap.hists {
		sort.Sort(&bucketSort{h})
	}
	return snap
}

type bucketSort struct{ h *promHist }

func (b *bucketSort) Len() int           { return len(b.h.les) }
func (b *bucketSort) Less(i, j int) bool { return b.h.les[i] < b.h.les[j] }
func (b *bucketSort) Swap(i, j int) {
	b.h.les[i], b.h.les[j] = b.h.les[j], b.h.les[i]
	b.h.cums[i], b.h.cums[j] = b.h.cums[j], b.h.cums[i]
}

func scrapeProm() (*promSnapshot, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp, data)
	}
	return snapshotProm(parseProm(string(data))), nil
}

func fmtUSf(us float64) string {
	if math.IsInf(us, 1) {
		return "inf"
	}
	return fmtUS(uint64(us))
}

// renderTop writes one dashboard frame.
func renderTop(w io.Writer, snap *promSnapshot, now time.Time) {
	sc := func(name string) uint64 { return snap.scalars[name] }
	fmt.Fprintf(w, "impulse top  %s  %s\n\n", base, now.Format("15:04:05"))
	fmt.Fprintf(w, "queue %d/%d   running %d/%d   http in-flight %d   harness workers %d   uptime %s\n",
		sc("service_queue_depth"), sc("service_queue_capacity"),
		sc("service_jobs_running"), sc("service_executors"),
		sc("service_http_in_flight"), sc("service_harness_workers"),
		time.Duration(sc("service_uptime_seconds"))*time.Second)
	submitted := sc("service_jobs_submitted")
	hits, deduped := sc("service_jobs_cache_hits"), sc("service_jobs_deduped")
	rate := 0.0
	if submitted > 0 {
		rate = float64(hits+deduped) / float64(submitted) * 100
	}
	fmt.Fprintf(w, "jobs  submitted %d   executed %d   done %d   failed %d   cancelled %d   rejected %d\n",
		submitted, sc("service_jobs_executed"), sc("service_jobs_done"),
		sc("service_jobs_failed"), sc("service_jobs_cancelled"), sc("service_jobs_rejected_queue_full"))
	fmt.Fprintf(w, "cache cache-hit %d   dedup %d   miss %d   coalesce rate %.1f%%\n\n",
		hits, deduped, sc("service_jobs_cache_miss"), rate)

	printHists := func(title, family string) {
		var rows []*promHist
		for _, h := range snap.hists {
			if h.family == family && h.count > 0 {
				rows = append(rows, h)
			}
		}
		if len(rows) == 0 {
			return
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].labelVal < rows[j].labelVal })
		fmt.Fprintf(w, "%s\n", title)
		for _, h := range rows {
			mean := time.Duration(h.sum/h.count) * time.Microsecond
			fmt.Fprintf(w, "  %-12s n=%-6d mean=%-10s p50<=%-10s p99<=%s\n",
				h.labelVal, h.count, mean, fmtUSf(h.quantile(50)), fmtUSf(h.quantile(99)))
		}
		fmt.Fprintln(w)
	}
	printHists("job run duration by kind", "service_job_run_duration_us")
	printHists("job queue wait by kind", "service_job_queue_wait_us")
	printHists("http request duration by endpoint", "service_http_request_duration_us")
}

// cmdTop polls /metrics and redraws the dashboard until interrupted.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print a single frame and exit (no screen clearing)")
	fs.Parse(args)
	for {
		snap, err := scrapeProm()
		if err != nil {
			return err
		}
		var b strings.Builder
		renderTop(&b, snap, time.Now())
		if *once {
			_, err := os.Stdout.WriteString(b.String())
			return err
		}
		// Home the cursor and clear below rather than a full clear: less
		// flicker at 2s refresh.
		fmt.Print("\x1b[H\x1b[2J" + b.String())
		time.Sleep(*interval)
	}
}
