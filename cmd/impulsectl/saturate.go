// The saturation harness: `impulsectl saturate` sweeps open-loop
// arrival rates against a warmed daemon (or fleet router) and reports
// the cache-hit serving capacity — client-side 2xx latency quantiles,
// server-side quantiles recovered from /metrics histogram bucket
// deltas, and the knee where the target rate stops being met. Records
// land in the benchjson schema so the measured curve can be committed
// next to `go test -bench` numbers and diffed across PRs.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"impulse/internal/obs"
)

// satStep is one rate step's measurement.
type satStep struct {
	target   int
	sent     uint64
	ok2xx    uint64
	http429  uint64
	otherErr uint64
	shed     uint64 // generator shed load: in-flight cap reached
	elapsed  time.Duration
	lat      *obs.Histogram // 2xx client latency, µs
	retryMax float64        // largest Retry-After seen (seconds)
	srvP50   float64        // server-side µs from bucket deltas
	srvP99   float64
}

func (s *satStep) achieved() float64 {
	if s.elapsed <= 0 {
		return 0
	}
	return float64(s.ok2xx) / s.elapsed.Seconds()
}

// errRate counts every request that was not served 2xx — rejections,
// transport failures, and generator shed — against everything offered.
func (s *satStep) errRate() float64 {
	offered := s.sent + s.shed
	if offered == 0 {
		return 0
	}
	return float64(s.http429+s.otherErr+s.shed) / float64(offered)
}

// cmdSaturate drives the sweep. The daemon is warmed first (one
// submission, waited to completion) so the steady state under load is
// the archived cache-hit path, which is the capacity the fleet story
// claims; -no-warm measures the miss storm instead.
func cmdSaturate(args []string) error {
	fs := flag.NewFlagSet("saturate", flag.ExitOnError)
	rates := fs.String("rates", "500,1000,2000,4000,8000,12000,16000",
		"comma-separated target arrival rates (req/s)")
	dur := fs.Duration("duration", 3*time.Second, "time spent at each rate step")
	spec := fs.String("spec", "", "inline JSON spec")
	file := fs.String("f", "", "spec file")
	inflight := fs.Int("inflight", 2048, "in-flight cap before the generator sheds load")
	out := fs.String("o", "", "merge benchjson-schema Saturate/ records into this JSON file")
	noWarm := fs.Bool("no-warm", false, "skip the warming submission (measures the miss path)")
	fs.Parse(args)

	if *spec == "" && *file == "" {
		*spec = `{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}`
	}
	body, err := specBytes(*spec, *file)
	if err != nil {
		return err
	}
	var targets []int
	for _, f := range strings.Split(*rates, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || r <= 0 {
			return fmt.Errorf("bad rate %q in -rates", f)
		}
		targets = append(targets, r)
	}
	sort.Ints(targets)

	// A dedicated client: the default transport keeps 2 idle conns per
	// host, which exhausts ephemeral ports long before 10k req/s.
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 512,
			IdleConnTimeout:     90 * time.Second,
		},
		Timeout: 30 * time.Second,
	}

	if !*noWarm {
		st, err := postJob(body)
		if err != nil {
			return fmt.Errorf("warming submission: %w", err)
		}
		if _, err := fetchResult(st.ID, "/result", true); err != nil {
			return fmt.Errorf("warming result: %w", err)
		}
		fmt.Fprintf(os.Stderr, "impulsectl: warmed %s (hash=%s); sweeping %v at %s per step\n",
			st.ID, st.Hash, targets, *dur)
	}

	var steps []*satStep
	for _, rate := range targets {
		before, _ := scrapeProm() // tolerate a daemon without /metrics
		step := runRateStep(client, body, rate, *dur, *inflight)
		after, _ := scrapeProm()
		if h := serverHistDelta(before, after); h != nil && h.count > 0 {
			step.srvP50, step.srvP99 = h.quantile(50), h.quantile(99)
		}
		steps = append(steps, step)
		printStep(step)
	}
	printKnee(steps)

	if *out != "" {
		if err := writeSatRecords(*out, steps); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "impulsectl: merged %d Saturate/ records into %s\n", len(steps), *out)
	}
	return nil
}

// runRateStep fires requests open-loop at the target rate for the step
// duration: each request has a deadline on the ideal arrival grid, the
// generator sleeps only when ahead, and an in-flight cap converts
// server collapse into counted shed instead of unbounded goroutines.
func runRateStep(client *http.Client, body []byte, rate int, dur time.Duration, inflight int) *satStep {
	step := &satStep{target: rate, lat: &obs.Histogram{}}
	total := int(float64(rate) * dur.Seconds())
	interval := time.Second / time.Duration(rate)
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	var retryMaxMilli atomic.Uint64 // Retry-After max, milliseconds

	url := base + "/v1/jobs"
	start := time.Now()
	for i := 0; i < total; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			atomic.AddUint64(&step.shed, 1)
			continue
		}
		atomic.AddUint64(&step.sent, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				atomic.AddUint64(&step.otherErr, 1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			us := uint64(time.Since(t0).Microseconds())
			switch {
			case resp.StatusCode/100 == 2:
				atomic.AddUint64(&step.ok2xx, 1)
				step.lat.Observe(us)
			case resp.StatusCode == http.StatusTooManyRequests:
				atomic.AddUint64(&step.http429, 1)
				if ra, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64); err == nil {
					milli := uint64(ra * 1000)
					for {
						cur := retryMaxMilli.Load()
						if milli <= cur || retryMaxMilli.CompareAndSwap(cur, milli) {
							break
						}
					}
				}
			default:
				atomic.AddUint64(&step.otherErr, 1)
			}
		}()
	}
	wg.Wait()
	step.elapsed = time.Since(start)
	step.retryMax = float64(retryMaxMilli.Load()) / 1000
	return step
}

// serverHistDelta subtracts two /metrics scrapes and returns the
// request-duration histogram covering just the step, merged across
// label values (endpoints). It prefers the service histogram and falls
// back to the fleet router's submit histogram, so the same sweep works
// against a single daemon or a frontend.
func serverHistDelta(before, after *promSnapshot) *promHist {
	if after == nil {
		return nil
	}
	for _, family := range []string{"service_http_request_duration_us", "fleet_submit_duration_us"} {
		if h := mergeFamily(after, family); h != nil {
			if b := mergeFamily(before, family); b != nil {
				subtractHist(h, b)
			}
			return h
		}
	}
	return nil
}

// mergeFamily sums a family's children into one histogram (identical
// power-of-two le grids make cumulative counts additive).
func mergeFamily(snap *promSnapshot, family string) *promHist {
	if snap == nil {
		return nil
	}
	var merged *promHist
	byLE := map[float64]uint64{}
	for _, h := range snap.hists {
		if h.family != family {
			continue
		}
		if merged == nil {
			merged = &promHist{family: family}
		}
		merged.count += h.count
		merged.sum += h.sum
		for i, le := range h.les {
			byLE[le] += h.cums[i]
		}
	}
	if merged == nil {
		return nil
	}
	for le := range byLE {
		merged.les = append(merged.les, le)
	}
	sort.Float64s(merged.les)
	for _, le := range merged.les {
		merged.cums = append(merged.cums, byLE[le])
	}
	return merged
}

// subtractHist removes the baseline scrape from a cumulative histogram
// in place (bounds matched by le; counters are monotonic so the delta
// is the step's own traffic).
func subtractHist(h, base *promHist) {
	baseAt := map[float64]uint64{}
	for i, le := range base.les {
		baseAt[le] = base.cums[i]
	}
	for i, le := range h.les {
		h.cums[i] -= baseAt[le]
	}
	h.count -= base.count
	h.sum -= base.sum
}

func printStep(s *satStep) {
	snap := s.lat.Snapshot()
	srv := ""
	if s.srvP99 > 0 {
		srv = fmt.Sprintf("   server p50<=%s p99<=%s", fmtUSf(s.srvP50), fmtUSf(s.srvP99))
	}
	ra := ""
	if s.retryMax > 0 {
		ra = fmt.Sprintf("   retry-after<=%.0fs", s.retryMax)
	}
	fmt.Printf("rate %6d: served %7.0f req/s   2xx %-7d 429 %-5d err %-4d shed %-5d p50<=%s p99<=%s%s%s\n",
		s.target, s.achieved(), s.ok2xx, s.http429, s.otherErr, s.shed,
		fmtUS(snap.Quantile(50)), fmtUS(snap.Quantile(99)), srv, ra)
}

// printKnee names the highest rate still served cleanly (>=95% of
// target at <1% errors) and summarizes how the steps beyond it degrade.
func printKnee(steps []*satStep) {
	var knee *satStep
	for _, s := range steps {
		if s.achieved() >= 0.95*float64(s.target) && s.errRate() < 0.01 {
			knee = s
		}
	}
	if knee == nil {
		fmt.Println("saturation: no step met 95% of target at <1% errors")
		return
	}
	fmt.Printf("saturation knee: %d req/s target -> %.0f req/s served (%.2f%% errors)\n",
		knee.target, knee.achieved(), knee.errRate()*100)
	for _, s := range steps {
		if s.target > knee.target {
			fmt.Printf("  beyond knee at %d: %.0f req/s served, %.1f%% 429/err/shed\n",
				s.target, s.achieved(), s.errRate()*100)
		}
	}
}

// satRecord mirrors cmd/benchjson's record schema so saturation points
// sit next to go-test benchmarks in the committed BENCH_*.json files.
type satRecord struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// writeSatRecords merges this sweep into path: existing non-Saturate
// records are kept, previous Saturate/ points are replaced, and the
// file stays one sorted JSON array.
func writeSatRecords(path string, steps []*satStep) error {
	var recs []satRecord
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &recs); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	}
	kept := recs[:0]
	for _, r := range recs {
		if !strings.HasPrefix(r.Name, "Saturate/") {
			kept = append(kept, r)
		}
	}
	recs = kept
	for _, s := range steps {
		snap := s.lat.Snapshot()
		ns := 0.0
		if snap.Count > 0 {
			ns = float64(snap.Sum) / float64(snap.Count) * 1e3 // µs -> ns
		}
		recs = append(recs, satRecord{
			Name:       fmt.Sprintf("Saturate/rate=%d", s.target),
			Iterations: int64(s.ok2xx),
			NsPerOp:    ns,
			Metrics: map[string]float64{
				"target_rps":    float64(s.target),
				"achieved_rps":  s.achieved(),
				"err_rate_pct":  s.errRate() * 100,
				"http_429":      float64(s.http429),
				"shed":          float64(s.shed),
				"p50_us":        float64(snap.Quantile(50)),
				"p99_us":        float64(snap.Quantile(99)),
				"server_p99_us": s.srvP99,
			},
		})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
