// Command impulse-sim runs a single workload on a single memory-system
// configuration and prints its metrics — the general-purpose entry point
// for exploring the simulator (the tables have dedicated commands,
// cmd/table1 and cmd/table2).
//
// Examples:
//
//	impulse-sim -workload cg -mode sg -prefetch both -n 14000
//	impulse-sim -workload mmp -mode remap -n 256 -tile 32
//	impulse-sim -workload diag -mode impulse
//	impulse-sim -workload ipc -mode impulse
//	impulse-sim -workload diag -mode impulse -trace out.json -series out.csv -counters -
//	impulse-sim -selftest
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"impulse"
	"impulse/internal/core"
	"impulse/internal/harness"
	"impulse/internal/obs"
	"impulse/internal/profiling"
	"impulse/internal/sim"
	"impulse/internal/tracefile"
	"impulse/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("impulse-sim: ")

	workload := flag.String("workload", "cg", "workload: cg|mmp|cholesky|spark|db|diag|ipc|script|replay")
	scriptFile := flag.String("file", "", "script or trace file (workload=script|replay)")
	mode := flag.String("mode", "conventional", "cg: conventional|sg|recolor; mmp: nocopy|copy|remap; diag/ipc: conventional|impulse")
	prefetch := flag.String("prefetch", "none", "prefetch policy: none|mc|l1|both")
	n := flag.Int("n", 0, "problem dimension (0 = workload default)")
	tile := flag.Int("tile", 32, "mmp tile dimension")
	cgits := flag.Int("cgits", 8, "cg inner iterations")
	niter := flag.Int("niter", 1, "cg outer iterations")
	classS := flag.Bool("classS", false, "run the full NPB Class S geometry (n=1400, 15x25 iterations)")
	selftest := flag.Bool("selftest", false, "run the randomized end-to-end gather verification and exit")
	events := flag.Int("events", 0, "print the first N simulated memory events")
	hist := flag.Bool("hist", false, "print the load-latency histogram after the run")
	record := flag.String("record", "", "record the run's address trace to this file")
	replayTicks := flag.Int("replay-ticks", 1, "non-memory cycles charged per replayed access")
	tracePath := flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON of the run to this file")
	traceLimit := flag.Int("trace-limit", 1<<20, "maximum span events retained in the trace buffer")
	seriesPath := flag.String("series", "", "write windowed utilization time-series to this file (.json for JSON, else CSV)")
	window := flag.Uint64("window", 10000, "time-series window width in cycles")
	counters := flag.String("counters", "", "dump the counter registry to this file after the run (\"-\" for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	if *selftest {
		verified, err := harness.RandomGatherCheck(1, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("selftest ok: %d gathered elements verified against memory contents\n", verified)
		return
	}

	var pf core.PrefetchPolicy
	switch *prefetch {
	case "none":
		pf = impulse.PrefetchNone
	case "mc":
		pf = impulse.PrefetchMC
	case "l1":
		pf = impulse.PrefetchL1
	case "both":
		pf = impulse.PrefetchBoth
	default:
		log.Fatalf("unknown prefetch policy %q", *prefetch)
	}

	// One hub serves the whole invocation; workloads that build several
	// systems (db) attach each in turn, yielding one trace with a track
	// group per machine and "newest machine wins" registry entries.
	var hub *obs.Hub
	if *tracePath != "" || *seriesPath != "" || *counters != "" {
		cfg := obs.Config{}
		if *tracePath != "" {
			cfg.TraceLimit = *traceLimit
		}
		if *seriesPath != "" {
			cfg.Window = *window
		}
		hub = obs.New(cfg)
	}

	var lastSys *impulse.System
	var traceWriter *tracefile.Writer
	var traceFile *os.File
	newSystem := func(kind core.ControllerKind) *impulse.System {
		s, err := impulse.NewSystem(impulse.Options{Controller: kind, Prefetch: pf})
		if err != nil {
			log.Fatal(err)
		}
		lastSys = s
		if hub != nil {
			s.AttachObs(hub)
		}
		if *record != "" && traceWriter == nil {
			traceFile, err = os.Create(*record)
			if err != nil {
				log.Fatal(err)
			}
			traceWriter, err = tracefile.NewWriter(traceFile)
			if err != nil {
				log.Fatal(err)
			}
			s.SetTracer(traceWriter.Attach())
		}
		if *events > 0 {
			remaining := *events
			s.SetTracer(func(e sim.TraceEvent) {
				if remaining > 0 {
					fmt.Println(e)
					remaining--
				}
			})
		}
		return s
	}

	switch *workload {
	case "replay":
		if *scriptFile == "" {
			log.Fatal("workload=replay requires -file")
		}
		f, err := os.Open(*scriptFile)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := tracefile.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		kind := impulse.Conventional
		if *mode == "impulse" || pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
			kind = impulse.Impulse
		}
		row, err := tracefile.Replay(newSystem(kind), recs, uint64(*replayTicks))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replayed %d accesses: %v\n", len(recs), row)

	case "script":
		if *scriptFile == "" {
			log.Fatal("workload=script requires -file")
		}
		src, err := os.ReadFile(*scriptFile)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := impulse.ParseScript(string(src))
		if err != nil {
			log.Fatal(err)
		}
		kind := impulse.Conventional
		if *mode == "impulse" || pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
			kind = impulse.Impulse
		}
		res, err := impulse.RunScript(newSystem(kind), prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v\nchecksum=%v\n", res.Row, res.Checksum)

	case "cg":
		par := impulse.CGPaperGeometry()
		par.CGIts = *cgits
		par.Niter = *niter
		if *n > 0 {
			par.N = *n
		}
		if *classS {
			par = impulse.CGClassS()
		}
		var cgMode workloads.CGMode
		kind := impulse.Impulse
		switch *mode {
		case "conventional":
			cgMode = impulse.CGConventional
			if pf == impulse.PrefetchNone || pf == impulse.PrefetchL1 {
				kind = impulse.Conventional
			}
		case "sg":
			cgMode = impulse.CGScatterGather
		case "recolor":
			cgMode = impulse.CGRecolor
		default:
			log.Fatalf("unknown cg mode %q", *mode)
		}
		m := impulse.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
		res, err := impulse.RunCG(newSystem(kind), par, cgMode, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v\nzeta=%.13f rnorm=%.3e nnz=%d\n", res.Row, res.Zeta, res.RNorm, res.NNZ)

	case "mmp":
		par := impulse.MMPDefault()
		if *n > 0 {
			par.N = *n
		}
		par.Tile = *tile
		var mmpMode workloads.MMPMode
		kind := impulse.Conventional
		switch *mode {
		case "conventional", "nocopy":
			mmpMode = impulse.MMPNoCopyTiled
		case "copy":
			mmpMode = impulse.MMPCopyTiled
		case "remap":
			mmpMode = impulse.MMPTileRemap
			kind = impulse.Impulse
		default:
			log.Fatalf("unknown mmp mode %q", *mode)
		}
		if pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
			kind = impulse.Impulse
		}
		res, err := impulse.RunMMP(newSystem(kind), par, mmpMode)
		if err != nil {
			log.Fatal(err)
		}
		want := workloads.RefMMP(par)
		status := "ok"
		if res.Checksum != want {
			status = "MISMATCH"
		}
		fmt.Printf("%v\nchecksum=%v (%s)\n", res.Row, res.Checksum, status)

	case "cholesky":
		nn := 128
		if *n > 0 {
			nn = *n
		}
		var chMode workloads.CholeskyMode
		kind := impulse.Conventional
		switch *mode {
		case "conventional", "nocopy":
			chMode = workloads.CholNoCopy
		case "copy":
			chMode = workloads.CholCopy
		case "remap":
			chMode = workloads.CholRemap
			kind = impulse.Impulse
		default:
			log.Fatalf("unknown cholesky mode %q", *mode)
		}
		if pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
			kind = impulse.Impulse
		}
		res, err := workloads.RunCholesky(newSystem(kind), nn, *tile, chMode)
		if err != nil {
			log.Fatal(err)
		}
		want := workloads.RefCholesky(nn, *tile)
		status := "ok"
		if res.Checksum != want {
			status = "MISMATCH"
		}
		fmt.Printf("%v\nchecksum=%v (%s)\n", res.Row, res.Checksum, status)

	case "spark":
		side := 200
		if *n > 0 {
			side = *n
		}
		mesh := workloads.MakeSparkMesh(side, side)
		gather := *mode == "sg" || *mode == "impulse"
		kind := impulse.Conventional
		if gather || pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
			kind = impulse.Impulse
		}
		res, err := workloads.RunSpark(newSystem(kind), mesh, 1, gather)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v\nchecksum=%v (%s)\n", res.Row, res.Checksum, mesh)

	case "db":
		p := workloads.DBDefault()
		if *n > 0 {
			p.Records = *n
		}
		useImp := *mode == "impulse"
		kind := impulse.Conventional
		if useImp || pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
			kind = impulse.Impulse
		}
		proj, err := workloads.RunDBProjection(newSystem(kind), p, useImp)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := workloads.RunDBIndexScan(newSystem(kind), p, 16, useImp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("projection: %v\nindex scan: %v\n", proj.Row, idx.Row)

	case "diag":
		useImpulse := *mode == "impulse"
		dim := 512
		if *n > 0 {
			dim = *n
		}
		kind := impulse.Conventional
		if useImpulse || pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
			kind = impulse.Impulse
		}
		res, err := workloads.RunDiagonal(newSystem(kind), dim, 4, useImpulse)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)

	case "ipc":
		useImpulse := *mode == "impulse"
		kind := impulse.Conventional
		if useImpulse || pf == impulse.PrefetchMC || pf == impulse.PrefetchBoth {
			kind = impulse.Impulse
		}
		res, err := workloads.RunIPC(newSystem(kind), 16, 128, 8, useImpulse)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v\nchecksum=%v\n", res.Row, res.Checksum)

	default:
		log.Fatalf("unknown workload %q", *workload)
	}
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			log.Fatal(err)
		}
		traceFile.Close()
		fmt.Fprintf(os.Stderr, "recorded %d accesses to %s\n", traceWriter.Count(), *record)
	}
	if *hist && lastSys != nil {
		fmt.Printf("\nload-latency histogram (cycles):\n%s", lastSys.St.LoadLatency.String())
	}
	if hub != nil {
		if *tracePath != "" {
			writeTo(*tracePath, hub.WriteTrace)
			if d := hub.Trace().Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "trace: %d events dropped past -trace-limit %d\n", d, *traceLimit)
			}
		}
		if *seriesPath != "" {
			if strings.HasSuffix(*seriesPath, ".json") {
				writeTo(*seriesPath, hub.Series().WriteJSON)
			} else {
				writeTo(*seriesPath, hub.Series().WriteCSV)
			}
		}
		if *counters != "" {
			writeTo(*counters, hub.Reg().WriteText)
		}
	}
}

// writeTo streams f to path, with "-" meaning stdout.
func writeTo(path string, f func(io.Writer) error) {
	if path == "-" {
		if err := f(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	out, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := f(out); err != nil {
		out.Close()
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
}
