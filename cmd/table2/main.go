// Command table2 regenerates the paper's Table 2: tiled matrix-matrix
// product under conventional no-copy tiling, software tile copying, and
// Impulse tile remapping, each with four prefetch policies.
//
// The paper uses 512x512 matrices with 32x32 tiles; the default here is
// 256x256 (the conflict behaviour that distinguishes the three schemes
// depends on tile/cache geometry ratios, which are preserved). Pass
// -n 512 for the paper's exact size.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"impulse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table2: ")
	def := impulse.MMPDefault()
	n := flag.Int("n", def.N, "matrix dimension (paper: 512)")
	tile := flag.Int("tile", def.Tile, "tile dimension (paper: 32)")
	quiet := flag.Bool("q", false, "suppress progress output")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of the text table")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for table cells (output is identical for any value)")
	traceCache := flag.Bool("trace-cache", true, "record each reference stream once and replay it for the other prefetch columns")
	vectorReplay := flag.Bool("vector-replay", true, "replay each column family through one shared trace decode (needs -trace-cache)")
	traceRecord := flag.String("trace-record", "", "persist recorded traces to this directory")
	traceReplay := flag.String("trace-replay", "", "load previously persisted traces from this directory")
	flag.Parse()
	impulse.SetWorkers(*jobs)
	impulse.SetTraceCache(*traceCache)
	impulse.SetVectorReplay(*vectorReplay)
	impulse.SetTraceRecordDir(*traceRecord)
	impulse.SetTraceReplayDir(*traceReplay)

	par := impulse.MMPParams{N: *n, Tile: *tile}
	progress := func(section, column string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s / %s ...\n", section, column)
		}
	}
	grid, err := impulse.Table2(par, progress)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		if err := grid.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := grid.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
