// Command benchjson converts `go test -bench -benchmem` text output
// (read from stdin) into a stable JSON document, so benchmark results
// can be committed and diffed across PRs (`make bench-json`).
//
// Each benchmark line becomes one record:
//
//	{"name": "SimL1Hit", "ns_per_op": 23.58, "bytes_per_op": 0,
//	 "allocs_per_op": 0, "iterations": 48036778}
//
// Custom metrics (the sim benchmarks report "sim-cycles") are carried
// through in a "metrics" map. Non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSimL1Hit-8  48036778  23.58 ns/op  0 B/op  0 allocs/op  12 sim-cycles
//
// returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return record{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return record{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so names are machine-independent.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: name, Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	flag.Parse()

	var recs []record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		// Mirror the raw line to stderr so piping through benchjson
		// doesn't hide the live benchmark progress.
		fmt.Fprintln(os.Stderr, sc.Text())
		if r, ok := parseLine(sc.Text()); ok {
			recs = append(recs, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		log.Fatal("no benchmark lines found on stdin (run: go test -run '^$' -bench . -benchmem | benchjson)")
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		log.Fatal(err)
	}
}
