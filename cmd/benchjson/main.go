// Command benchjson converts `go test -bench -benchmem` text output
// (read from stdin) into a stable JSON document, so benchmark results
// can be committed and diffed across PRs (`make bench-json`).
//
// Each benchmark line becomes one record:
//
//	{"name": "SimL1Hit", "ns_per_op": 23.58, "bytes_per_op": 0,
//	 "allocs_per_op": 0, "iterations": 48036778}
//
// Custom metrics (the sim benchmarks report "sim-cycles") are carried
// through in a "metrics" map. Non-benchmark lines are ignored.
//
// With -compare BASELINE.json the fresh results are instead diffed
// against a previously committed document (`make bench-diff`): one line
// per benchmark with the ns/op delta and the sim-cycles movement, and a
// non-zero exit when any ns/op regression exceeds -threshold percent.
//
// When the input carries the analytical-twin pair (TwinPredict/F and
// TwinSimBaseline/F, see internal/twin) a per-family twin-vs-sim
// latency summary is appended: the speedup the instant tier buys over
// the cache-miss simulation path.
//
// With -grid FILE.impres the command instead reads a columnar result
// blob (the archive format impulsed stores and `impulsectl result
// -format=columnar` fetches) straight off the columns and renders the
// view named by -format (json or text) to stdout — no daemon needed to
// inspect an archived result.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"impulse/internal/colres"
)

type record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSimL1Hit-8  48036778  23.58 ns/op  0 B/op  0 allocs/op  12 sim-cycles
//
// returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return record{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return record{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so names are machine-independent.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: name, Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// diff prints one line per fresh benchmark with the ns/op movement
// against the baseline and the sim-cycles metric movement (simulated
// work should not change in a pure-performance PR). It returns an error
// naming every benchmark whose ns/op regressed beyond thresholdPct.
func diff(w io.Writer, baselinePath string, fresh []record, thresholdPct float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base []record
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	byName := make(map[string]record, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	fmt.Fprintf(w, "%-32s %14s %14s %9s  %s\n", "benchmark", "base ns/op", "new ns/op", "delta", "sim-cycles")
	var regressed []string
	for _, r := range fresh {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-32s %14s %14.0f %9s  new benchmark\n", r.Name, "-", r.NsPerOp, "-")
			continue
		}
		delete(byName, r.Name)
		pct := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		cyc := ""
		if bc, ok := b.Metrics["sim-cycles"]; ok {
			if nc := r.Metrics["sim-cycles"]; nc == bc {
				cyc = fmt.Sprintf("%.0f (unchanged)", nc)
			} else {
				cyc = fmt.Sprintf("%.0f -> %.0f (CHANGED)", bc, nc)
			}
		}
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %+8.1f%%  %s\n", r.Name, b.NsPerOp, r.NsPerOp, pct, cyc)
		if pct > thresholdPct {
			regressed = append(regressed, fmt.Sprintf("%s (%+.1f%%)", r.Name, pct))
		}
	}
	removed := make([]string, 0, len(byName))
	for name := range byName {
		// Saturate/ points come from `impulsectl saturate -o`, not from
		// `go test -bench`, so a bench-only rerun never reproduces them;
		// their absence is not a removed benchmark.
		if strings.HasPrefix(name, "Saturate/") {
			continue
		}
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%-32s %14.0f %14s %9s  removed\n", name, byName[name].NsPerOp, "-", "-")
	}
	if len(regressed) > 0 {
		return fmt.Errorf("ns/op regressions beyond %.1f%%: %s", thresholdPct, strings.Join(regressed, ", "))
	}
	return nil
}

// twinCompare prints the analytical-tier headline whenever the record
// set carries both sides of a twin pair: the twin's full-prediction
// latency (TwinPredict/family) against the cache-miss simulation of the
// same family at the same geometry (TwinSimBaseline/family).
func twinCompare(w io.Writer, recs []record) {
	byName := make(map[string]record, len(recs))
	for _, r := range recs {
		byName[r.Name] = r
	}
	printed := false
	for _, r := range recs {
		fam, ok := strings.CutPrefix(r.Name, "TwinPredict/")
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		sim, ok := byName["TwinSimBaseline/"+fam]
		if !ok {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "twin vs sim latency (fast geometry, trace cache cold):")
			printed = true
		}
		fmt.Fprintf(w, "  %-12s twin %12.0f ns/op   sim %14.0f ns/op   %.0fx\n",
			fam, r.NsPerOp, sim.NsPerOp, sim.NsPerOp/r.NsPerOp)
	}
}

// renderGrid decodes a columnar result blob and writes the requested
// view to stdout.
func renderGrid(path, format string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, err := colres.Decode(blob)
	if err != nil {
		return err
	}
	switch format {
	case "json":
		return colres.WriteGridJSON(doc, os.Stdout)
	case "text":
		return colres.RenderText(doc, os.Stdout)
	default:
		return fmt.Errorf("-format %q must be json or text with -grid", format)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	compare := flag.String("compare", "", "diff against this baseline JSON instead of emitting JSON")
	threshold := flag.Float64("threshold", 10, "with -compare: exit non-zero when any ns/op regression exceeds this percent")
	grid := flag.String("grid", "", "read a columnar result blob from this file and render it instead of parsing benchmarks")
	format := flag.String("format", "json", "with -grid: view to render (json or text)")
	flag.Parse()

	if *grid != "" {
		if err := renderGrid(*grid, *format); err != nil {
			log.Fatal(err)
		}
		return
	}

	var recs []record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		// Mirror the raw line to stderr so piping through benchjson
		// doesn't hide the live benchmark progress.
		fmt.Fprintln(os.Stderr, sc.Text())
		if r, ok := parseLine(sc.Text()); ok {
			recs = append(recs, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		log.Fatal("no benchmark lines found on stdin (run: go test -run '^$' -bench . -benchmem | benchjson)")
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *compare != "" {
		err := diff(os.Stdout, *compare, recs, *threshold)
		twinCompare(os.Stdout, recs)
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	twinCompare(os.Stderr, recs)
	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			log.Fatal(err)
		}
	}
}
