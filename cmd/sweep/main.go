// Command sweep runs the extension and ablation experiments indexed in
// DESIGN.md: the DRAM scheduler ablation (§2.2's sketched future work vs
// the evaluated in-order scheduler), the superpage TLB experiment ([21]),
// the IPC message-gather scenario (§6), the controller prefetch-SRAM
// sweep, and the gather-stride sweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"impulse/internal/core"
	"impulse/internal/harness"
	"impulse/internal/obs"
	"impulse/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	exp := flag.String("exp", "all", "experiment: scheduler|superpage|ipc|sram|stride|policy|geometry|cholesky|spark|superscalar|db|all")
	counters := flag.String("counters", "", "dump every measured row's counters to this file after the run (\"-\" for stdout)")
	flag.Parse()

	var reg obs.Registry
	if *counters != "" {
		core.SetRowObserver(core.CollectRows(&reg))
	}

	cgPar := workloads.CGParams{N: 4096, Nonzer: 6, Niter: 1, CGIts: 4, Shift: 10, RCond: 0.1}
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("scheduler", func() error { return harness.SchedulerAblation(cgPar, os.Stdout) })
	run("superpage", func() error { return harness.SuperpageExperiment(2048, 4, os.Stdout) })
	run("ipc", func() error { return harness.IPCExperiment(32, 1024, 4, os.Stdout) })
	run("sram", func() error {
		return harness.PrefetchBufferSweep([]uint64{128, 256, 512, 1024, 2048, 4096, 8192}, os.Stdout)
	})
	run("stride", func() error {
		return harness.GatherStrideSweep([]int{1, 2, 4, 8, 16, 32}, 16384, os.Stdout)
	})
	run("policy", func() error { return harness.PagePolicyAblation(cgPar, os.Stdout) })
	run("geometry", func() error {
		return harness.CacheGeometrySweep(cgPar, []uint64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}, os.Stdout)
	})
	run("cholesky", func() error { return harness.CholeskyExperiment(256, 32, os.Stdout) })
	run("spark", func() error { return harness.SparkExperiment(300, 300, 1, os.Stdout) })
	run("db", func() error {
		return harness.DBExperiment(workloads.DBDefault(), 16, os.Stdout)
	})
	run("superscalar", func() error {
		// Larger geometry: the prediction is about memory-bound runs.
		par := workloads.CGParams{N: 14000, Nonzer: 7, Niter: 1, CGIts: 3, Shift: 20, RCond: 0.1}
		return harness.SuperscalarExperiment(par, []uint64{1, 2, 4, 8}, os.Stdout)
	})

	if *counters != "" {
		w := io.Writer(os.Stdout)
		if *counters != "-" {
			f, err := os.Create(*counters)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteText(w); err != nil {
			log.Fatal(err)
		}
	}
}
