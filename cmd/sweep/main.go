// Command sweep runs the extension and ablation experiments indexed in
// DESIGN.md: the DRAM scheduler ablation (§2.2's sketched future work vs
// the evaluated in-order scheduler), the superpage TLB experiment ([21]),
// the IPC message-gather scenario (§6), the controller prefetch-SRAM
// sweep, the gather-stride sweep, and the rest of the families in
// harness.Families. The same family table backs the impulsed service's
// {"kind":"sweep"} jobs, so -exp names and service family names always
// agree.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"impulse/internal/core"
	"impulse/internal/harness"
	"impulse/internal/obs"
	"impulse/internal/profiling"
	"impulse/internal/twin/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	valid := append(harness.FamilyNames(), "all")
	exp := flag.String("exp", "all", "experiment: "+strings.Join(valid, "|"))
	fast := flag.Bool("fast", false, "reduced geometries (seconds instead of minutes)")
	counters := flag.String("counters", "", "dump every measured row's counters to this file after the run (\"-\" for stdout)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for experiment rows (output is identical for any value)")
	traceCache := flag.Bool("trace-cache", true, "record each reference stream once and replay it across timing-only cells")
	vectorReplay := flag.Bool("vector-replay", true, "replay each cell family through one shared trace decode (needs -trace-cache)")
	traceRecord := flag.String("trace-record", "", "persist recorded traces to this directory")
	traceReplay := flag.String("trace-replay", "", "load previously persisted traces from this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	twinValidate := flag.Bool("twin-validate", false, "validate the analytical twins against full simulation and exit (honors -fast, -j)")
	twinJSON := flag.String("twin-json", "", "with -twin-validate, also write the JSON report to this file (\"-\" for stdout)")
	flag.Parse()
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()
	harness.SetWorkers(*jobs)
	harness.SetTraceCache(*traceCache)
	harness.SetVectorReplay(*vectorReplay)
	harness.SetTraceRecordDir(*traceRecord)
	harness.SetTraceReplayDir(*traceReplay)

	found := false
	for _, n := range valid {
		if *exp == n {
			found = true
			break
		}
	}
	if !found {
		log.Fatalf("unknown experiment %q; valid: %s", *exp, strings.Join(valid, ", "))
	}

	var reg obs.Registry
	if *counters != "" {
		core.SetRowObserver(core.CollectRows(&reg))
	}

	// ^C stops between experiment cells instead of mid-table garbage.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *twinValidate {
		rep, err := validate.Run(ctx, *fast)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *twinJSON != "" {
			w := io.Writer(os.Stdout)
			if *twinJSON != "-" {
				f, err := os.Create(*twinJSON)
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				w = f
			}
			if err := rep.WriteJSON(w); err != nil {
				log.Fatal(err)
			}
		}
		if err := rep.Check(); err != nil {
			log.Fatal(err)
		}
		return
	}

	for _, f := range harness.Families() {
		if *exp != "all" && *exp != f.Name {
			continue
		}
		if err := f.Run(ctx, *fast, os.Stdout); err != nil {
			log.Fatalf("%s: %v", f.Name, err)
		}
		fmt.Println()
	}

	if *counters != "" {
		w := io.Writer(os.Stdout)
		if *counters != "-" {
			f, err := os.Create(*counters)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteText(w); err != nil {
			log.Fatal(err)
		}
	}
}
