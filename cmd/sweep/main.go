// Command sweep runs the extension and ablation experiments indexed in
// DESIGN.md: the DRAM scheduler ablation (§2.2's sketched future work vs
// the evaluated in-order scheduler), the superpage TLB experiment ([21]),
// the IPC message-gather scenario (§6), the controller prefetch-SRAM
// sweep, and the gather-stride sweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"impulse/internal/core"
	"impulse/internal/harness"
	"impulse/internal/obs"
	"impulse/internal/workloads"
)

// experiment is one named entry of the sweep. The table below is the
// single source of truth: the -exp usage string, input validation, and
// the run order are all derived from it.
type experiment struct {
	name string
	run  func(w io.Writer) error
}

func experiments() []experiment {
	cgPar := workloads.CGParams{N: 4096, Nonzer: 6, Niter: 1, CGIts: 4, Shift: 10, RCond: 0.1}
	return []experiment{
		{"scheduler", func(w io.Writer) error { return harness.SchedulerAblation(cgPar, w) }},
		{"superpage", func(w io.Writer) error { return harness.SuperpageExperiment(2048, 4, w) }},
		{"ipc", func(w io.Writer) error { return harness.IPCExperiment(32, 1024, 4, w) }},
		{"sram", func(w io.Writer) error {
			return harness.PrefetchBufferSweep([]uint64{128, 256, 512, 1024, 2048, 4096, 8192}, w)
		}},
		{"stride", func(w io.Writer) error {
			return harness.GatherStrideSweep([]int{1, 2, 4, 8, 16, 32}, 16384, w)
		}},
		{"policy", func(w io.Writer) error { return harness.PagePolicyAblation(cgPar, w) }},
		{"geometry", func(w io.Writer) error {
			return harness.CacheGeometrySweep(cgPar, []uint64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}, w)
		}},
		{"cholesky", func(w io.Writer) error { return harness.CholeskyExperiment(256, 32, w) }},
		{"spark", func(w io.Writer) error { return harness.SparkExperiment(300, 300, 1, w) }},
		{"db", func(w io.Writer) error { return harness.DBExperiment(workloads.DBDefault(), 16, w) }},
		{"superscalar", func(w io.Writer) error {
			// Larger geometry: the prediction is about memory-bound runs.
			par := workloads.CGParams{N: 14000, Nonzer: 7, Niter: 1, CGIts: 3, Shift: 20, RCond: 0.1}
			return harness.SuperscalarExperiment(par, []uint64{1, 2, 4, 8}, w)
		}},
	}
}

// names returns the valid -exp values, in run order, "all" last.
func names(exps []experiment) []string {
	ns := make([]string, 0, len(exps)+1)
	for _, e := range exps {
		ns = append(ns, e.name)
	}
	return append(ns, "all")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	exps := experiments()
	valid := names(exps)
	exp := flag.String("exp", "all", "experiment: "+strings.Join(valid, "|"))
	counters := flag.String("counters", "", "dump every measured row's counters to this file after the run (\"-\" for stdout)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for experiment rows (output is identical for any value)")
	traceCache := flag.Bool("trace-cache", true, "record each reference stream once and replay it across timing-only cells")
	traceRecord := flag.String("trace-record", "", "persist recorded traces to this directory")
	traceReplay := flag.String("trace-replay", "", "load previously persisted traces from this directory")
	flag.Parse()
	harness.SetWorkers(*jobs)
	harness.SetTraceCache(*traceCache)
	harness.SetTraceRecordDir(*traceRecord)
	harness.SetTraceReplayDir(*traceReplay)

	found := false
	for _, n := range valid {
		if *exp == n {
			found = true
			break
		}
	}
	if !found {
		log.Fatalf("unknown experiment %q; valid: %s", *exp, strings.Join(valid, ", "))
	}

	var reg obs.Registry
	if *counters != "" {
		core.SetRowObserver(core.CollectRows(&reg))
	}

	for _, e := range exps {
		if *exp != "all" && *exp != e.name {
			continue
		}
		if err := e.run(os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Println()
	}

	if *counters != "" {
		w := io.Writer(os.Stdout)
		if *counters != "-" {
			f, err := os.Create(*counters)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteText(w); err != nil {
			log.Fatal(err)
		}
	}
}
