// Package impulse is a library-quality reproduction of the Impulse
// memory-system architecture (Carter et al., "Impulse: Building a Smarter
// Memory Controller", HPCA 1999).
//
// Impulse adds two features to a traditional memory controller:
// application-specific physical address remapping through an otherwise
// unused ("shadow") part of the physical address space, and prefetching
// at the memory controller. This package exposes an execution-driven
// simulator of the paper's machine — single-issue CPU, 32 KB VIPT L1,
// 256 KB PIPT L2, Runway-style bus, banked DRAM, and the Impulse
// controller with its shadow descriptors, AddrCalc, controller page
// table, and prefetch buffers — together with the remapping system-call
// suite, the paper's workloads, and harnesses that regenerate its
// evaluation tables.
//
// Quick start:
//
//	sys, _ := impulse.NewSystem(impulse.Options{
//		Controller: impulse.Impulse,
//		Prefetch:   impulse.PrefetchMC,
//	})
//	x := sys.MustAlloc(8*4096, 0)     // a simulated array
//	sys.StoreF64(x, 3.14)             // runs through TLB/L1/L2/bus/MC/DRAM
//	v := sys.LoadF64(x)
//
// Remapping (the paper's §2.3 operations): System.MapScatterGather,
// System.NewStridedAlias/Retarget, System.Recolor, System.MapSuperpage.
//
// Experiments: Table1, Table2, Figure1 (and the sweeps in
// internal/harness via cmd/sweep) print the paper's tables for this
// simulator; EXPERIMENTS.md records how they compare to the published
// numbers.
package impulse

import (
	"context"
	"io"

	"impulse/internal/addr"
	"impulse/internal/core"
	"impulse/internal/harness"
	"impulse/internal/script"
	"impulse/internal/workloads"
)

// Re-exported core types: the system and its configuration.
type (
	// System is a simulated machine plus the Impulse OS interface.
	System = core.System
	// Options selects controller personality and prefetch policy.
	Options = core.Options
	// Row is one measured configuration (the paper's table rows).
	Row = core.Row
	// StridedAlias is a retargetable dense alias of a strided structure.
	StridedAlias = core.StridedAlias
	// VAddr is a simulated virtual address.
	VAddr = addr.VAddr
)

// Controller kinds.
const (
	Conventional = core.Conventional
	Impulse      = core.Impulse
)

// Prefetch policies (the four columns of the paper's tables).
const (
	PrefetchNone = core.PrefetchNone
	PrefetchMC   = core.PrefetchMC
	PrefetchL1   = core.PrefetchL1
	PrefetchBoth = core.PrefetchBoth
)

// Flush modes for StridedAlias retargeting.
const (
	Purge = core.Purge
	Flush = core.Flush
)

// NewSystem builds a simulated system.
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// Speedup is the paper's speedup convention: base time / r time.
func Speedup(base, r Row) float64 { return core.Speedup(base, r) }

// Workload parameter and result types.
type (
	// CGParams sizes the NAS conjugate gradient benchmark.
	CGParams = workloads.CGParams
	// MMPParams sizes the tiled matrix-matrix product.
	MMPParams = workloads.MMPParams
	// SparseMatrix is the CSR encoding of Figure 4.
	SparseMatrix = workloads.SparseMatrix
	// Grid is a rendered experiment table.
	Grid = harness.Grid
)

// CG modes (Table 1 sections).
const (
	CGConventional  = workloads.CGConventional
	CGScatterGather = workloads.CGScatterGather
	CGRecolor       = workloads.CGRecolor
)

// MMP modes (Table 2 sections).
const (
	MMPNoCopyTiled = workloads.MMPNoCopyTiled
	MMPCopyTiled   = workloads.MMPCopyTiled
	MMPTileRemap   = workloads.MMPTileRemap
)

// CGPaperGeometry is the default Table 1 geometry (see workloads docs).
func CGPaperGeometry() CGParams { return workloads.CGPaperGeometry() }

// CGClassS is the NPB Class S geometry.
func CGClassS() CGParams { return workloads.CGClassS() }

// MMPDefault is the default Table 2 geometry.
func MMPDefault() MMPParams { return workloads.MMPDefault() }

// MakeA generates the NAS CG input matrix.
func MakeA(n, nonzer int, rcond, shift float64) *SparseMatrix {
	return workloads.MakeA(n, nonzer, rcond, shift)
}

// RunCG executes the CG benchmark on a system.
func RunCG(s *System, par CGParams, mode workloads.CGMode, m *SparseMatrix) (workloads.CGResult, error) {
	return workloads.RunCG(s, par, mode, m)
}

// RunMMP executes the matrix-product benchmark on a system.
func RunMMP(s *System, par MMPParams, mode workloads.MMPMode) (workloads.MMPResult, error) {
	return workloads.RunMMP(s, par, mode)
}

// SetWorkers sets the number of worker goroutines experiment rows fan
// across (the cmd binaries' -j flag). Output is byte-identical for any
// worker count; see internal/harness's pool for the determinism rules.
func SetWorkers(n int) { harness.SetWorkers(n) }

// Workers returns the configured experiment pool width.
func Workers() int { return harness.Workers() }

// SetTraceCache enables or disables the experiment harness's trace
// cache (the cmd binaries' -trace-cache flag, on by default): sweep
// families whose cells differ only in timing knobs execute each
// distinct reference stream once and replay the recorded trace
// everywhere else, with cycle- and counter-identical results.
func SetTraceCache(on bool) { harness.SetTraceCache(on) }

// TraceCacheEnabled reports whether the trace cache is on.
func TraceCacheEnabled() bool { return harness.TraceCacheEnabled() }

// SetVectorReplay enables or disables vectorized batch replay (the cmd
// binaries' -vector-replay flag, on by default): the cells of a sweep
// family that share one recorded reference stream replay through a
// single shared decode instead of re-decoding the trace per cell.
// Results are byte-identical either way; only host time differs.
// Effective only while the trace cache is on.
func SetVectorReplay(on bool) { harness.SetVectorReplay(on) }

// VectorReplayEnabled reports whether replay batches are vectorized.
func VectorReplayEnabled() bool { return harness.VectorReplayEnabled() }

// SetTraceRecordDir persists every trace the cache records to dir (the
// -trace-record flag). Empty disables persistence.
func SetTraceRecordDir(dir string) { harness.SetTraceRecordDir(dir) }

// SetTraceReplayDir loads previously persisted traces from dir instead
// of executing workloads (the -trace-replay flag). Empty disables.
func SetTraceReplayDir(dir string) { harness.SetTraceReplayDir(dir) }

// Table1 regenerates the paper's Table 1 at the given geometry.
func Table1(par CGParams, progress harness.Progress) (*Grid, error) {
	return harness.Table1(context.Background(), par, progress)
}

// Table1Ctx is Table1 with a context: a cancelled context stops the run
// between grid cells and returns ctx.Err().
func Table1Ctx(ctx context.Context, par CGParams, progress harness.Progress) (*Grid, error) {
	return harness.Table1(ctx, par, progress)
}

// Table2 regenerates the paper's Table 2 at the given geometry.
func Table2(par MMPParams, progress harness.Progress) (*Grid, error) {
	return harness.Table2(context.Background(), par, progress)
}

// Table2Ctx is Table2 with a context (see Table1Ctx).
func Table2Ctx(ctx context.Context, par MMPParams, progress harness.Progress) (*Grid, error) {
	return harness.Table2(ctx, par, progress)
}

// Figure1 quantifies the paper's diagonal-remapping example.
func Figure1(dim, sweeps int, w io.Writer) error {
	return harness.Figure1(context.Background(), dim, sweeps, w)
}

// RunDiagonal runs the Figure 1 microkernel on a system.
func RunDiagonal(s *System, dim, sweeps int, useImpulse bool) (workloads.DiagResult, error) {
	return workloads.RunDiagonal(s, dim, sweeps, useImpulse)
}

// RunIPC runs the §6 message-gather scenario on a system.
func RunIPC(s *System, bufCount, wordsPerBuf, messages int, useImpulse bool) (workloads.IPCResult, error) {
	return workloads.RunIPC(s, bufCount, wordsPerBuf, messages, useImpulse)
}

// Script is a parsed memory-access program (see internal/script for the
// language: typed loads/stores over named regions, loops, the Impulse
// remapping operations, and impulse/else blocks so one program expresses
// both the conventional and remapped variants of a kernel).
type Script = script.Program

// ScriptResult is the outcome of running a Script.
type ScriptResult = script.Result

// ParseScript compiles a memory-access program.
func ParseScript(src string) (*Script, error) { return script.Parse(src) }

// RunScript executes a parsed program on a system.
func RunScript(s *System, p *Script) (ScriptResult, error) { return script.Run(s, p) }
