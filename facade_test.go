package impulse_test

import (
	"strings"
	"testing"

	"impulse"
)

// The façade re-exports; exercise each wrapper once with tiny geometry.
func TestFacadeTable1(t *testing.T) {
	par := impulse.CGParams{N: 240, Nonzer: 4, Niter: 1, CGIts: 3, Shift: 10, RCond: 0.1}
	g, err := impulse.Table1(par, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table 1") {
		t.Error("render incomplete")
	}
}

func TestFacadeTable2AndFigure1(t *testing.T) {
	g, err := impulse.Table2(impulse.MMPParams{N: 64, Tile: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Baseline().Row.Cycles == 0 {
		t.Error("empty baseline")
	}
	var b strings.Builder
	if err := impulse.Figure1(64, 2, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 1") {
		t.Error("figure render incomplete")
	}
}

func TestFacadeWorkloadWrappers(t *testing.T) {
	sys, err := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := impulse.RunDiagonal(sys, 64, 1, true); err != nil {
		t.Fatal(err)
	}
	sys2, _ := impulse.NewSystem(impulse.Options{Controller: impulse.Impulse})
	if _, err := impulse.RunIPC(sys2, 4, 16, 1, true); err != nil {
		t.Fatal(err)
	}
	sys3, _ := impulse.NewSystem(impulse.Options{Controller: impulse.Conventional})
	par := impulse.CGClassS()
	par.Niter, par.CGIts, par.N, par.Nonzer = 1, 2, 240, 4
	m := impulse.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	if _, err := impulse.RunCG(sys3, par, impulse.CGConventional, m); err != nil {
		t.Fatal(err)
	}
	sys4, _ := impulse.NewSystem(impulse.Options{Controller: impulse.Conventional})
	if _, err := impulse.RunMMP(sys4, impulse.MMPParams{N: 32, Tile: 16}, impulse.MMPNoCopyTiled); err != nil {
		t.Fatal(err)
	}
	if impulse.CGPaperGeometry().N != 14000 || impulse.MMPDefault().N != 256 {
		t.Error("default geometries changed unexpectedly")
	}
	base := impulse.Row{Cycles: 100}
	if impulse.Speedup(base, impulse.Row{Cycles: 50}) != 2 {
		t.Error("Speedup wrapper")
	}
}
