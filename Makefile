# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-json bench-diff fuzz-short twin-validate serve-smoke saturate-smoke ci tables report sweeps examples fmt vet clean

all: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the benchmark suite and writes the machine-readable
# results committed with each PR (name, ns/op, B/op, allocs/op, and the
# sim-cycles metric). Progress streams to stderr while it runs.
BENCH_JSON ?= BENCH_PR10.json
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# bench-diff reruns the suite and diffs it against the committed
# baseline: per-benchmark ns/op deltas plus the sim-cycles metric (which
# must not move in a pure-performance change). Exits non-zero when any
# ns/op regression exceeds BENCH_THRESHOLD percent.
BENCH_THRESHOLD ?= 10
bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem ./... | \
		$(GO) run ./cmd/benchjson -compare $(BENCH_JSON) -threshold $(BENCH_THRESHOLD)

# fuzz-short gives the binary decoders a brief randomized shakedown;
# the corpus seeds cover real recorded payloads plus known-malformed
# shapes. Three decoders run: the scalar trace replay decoder, the
# vectorized program decoder (which must agree with the scalar one op
# for op), and the columnar result decoder (which must reject every
# malformed blob without panicking).
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzTraceDecode -fuzztime 10s ./internal/tracefile
	$(GO) test -run '^$$' -fuzz FuzzVectorDecode -fuzztime 10s ./internal/tracefile
	$(GO) test -run '^$$' -fuzz FuzzColumnarDecode -fuzztime 10s ./internal/colres

# twin-validate runs every analytical twin against a full simulator
# sweep at the fast geometry and fails when any family's median cycles
# error exceeds its documented bound (docs/TWIN.md). The committed
# goldens under internal/twin/validate/testdata pin the full reports.
twin-validate:
	$(GO) run ./cmd/sweep -twin-validate -fast

# serve-smoke is the end-to-end check for the experiment service: boot
# impulsed on an ephemeral port, submit a small Table 1 job through
# impulsectl, diff the bytes against the direct cmd/table1 run, verify
# the single-flight dedup path with a concurrent load burst, check that
# the burst populated the Prometheus exposition (typed histograms with
# bucket series), fetch the job's provenance manifest and Perfetto
# timeline, render one `top` frame end-to-end, exercise the analytical
# twin tier (/v1/predict, a tier=twin load burst that must execute
# nothing, the twin metrics, /readyz), then shut the daemon down
# gracefully (SIGTERM -> drain).
serve-smoke:
	@set -e; dir=$$(mktemp -d); trap 'kill $$pid 2>/dev/null || true; rm -rf "$$dir"' EXIT; \
	$(GO) build -o $$dir/impulsed ./cmd/impulsed; \
	$(GO) build -o $$dir/impulsectl ./cmd/impulsectl; \
	$(GO) build -o $$dir/table1 ./cmd/table1; \
	$$dir/impulsed -addr 127.0.0.1:0 -addr-file $$dir/addr 2>$$dir/impulsed.log & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "impulsed never bound"; cat $$dir/impulsed.log; exit 1; }; \
	addr=$$(cat $$dir/addr); echo "impulsed up at $$addr"; \
	id=$$($$dir/impulsectl -addr $$addr submit \
		-spec '{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}' | cut -f1); \
	$$dir/impulsectl -addr $$addr result -wait $$id >$$dir/service.out; \
	$$dir/table1 -n 240 -nonzer 4 -niter 1 -cgits 2 -q >$$dir/direct.out; \
	diff -u $$dir/direct.out $$dir/service.out || { echo "serve-smoke: service output differs from CLI"; exit 1; }; \
	$$dir/impulsectl -addr $$addr load -n 8 \
		-spec '{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}'; \
	$$dir/impulsectl -addr $$addr metrics >$$dir/metrics.out; \
	for want in \
		'# TYPE service_http_request_duration_us histogram' \
		'# TYPE service_job_run_duration_us histogram' \
		'service_job_run_duration_us_count{kind="table1"} 1' \
		'service_http_request_duration_us_bucket{endpoint="submit"' \
		'service_jobs_executed 1'; do \
		grep -qF "$$want" $$dir/metrics.out || \
			{ echo "serve-smoke: /metrics missing: $$want"; cat $$dir/metrics.out; exit 1; }; \
	done; \
	$$dir/impulsectl -addr $$addr manifest $$id >$$dir/manifest.json; \
	grep -qF '"cells_recorded": 3' $$dir/manifest.json || \
		{ echo "serve-smoke: bad manifest"; cat $$dir/manifest.json; exit 1; }; \
	$$dir/impulsectl -addr $$addr trace $$id >$$dir/trace.json; \
	grep -qF '"traceEvents"' $$dir/trace.json || \
		{ echo "serve-smoke: bad trace"; cat $$dir/trace.json; exit 1; }; \
	$$dir/impulsectl -addr $$addr top -once >$$dir/top.out; \
	grep -q 'job run duration by kind' $$dir/top.out || \
		{ echo "serve-smoke: top rendered nothing"; cat $$dir/top.out; exit 1; }; \
	$$dir/impulsectl -addr $$addr predict -family sram -fast >$$dir/predict.out; \
	for want in '"tier": "twin"' '"error_bound": 0.1' '"grid"'; do \
		grep -qF "$$want" $$dir/predict.out || \
			{ echo "serve-smoke: /v1/predict missing: $$want"; cat $$dir/predict.out; exit 1; }; \
	done; \
	$$dir/impulsectl -addr $$addr load -n 4 -tier twin >$$dir/twinload.out; \
	grep -qF '0 execution(s)' $$dir/twinload.out || \
		{ echo "serve-smoke: twin load burst ran the simulator"; cat $$dir/twinload.out; exit 1; }; \
	$$dir/impulsectl -addr $$addr metrics >$$dir/metrics2.out; \
	for want in \
		'service_twin_requests 5' \
		'service_twin_ineligible 0' \
		'# TYPE service_twin_latency_us histogram'; do \
		grep -qF "$$want" $$dir/metrics2.out || \
			{ echo "serve-smoke: /metrics missing: $$want"; cat $$dir/metrics2.out; exit 1; }; \
	done; \
	curl -fsS http://$$addr/readyz >$$dir/readyz.out || \
		{ echo "serve-smoke: /readyz not ready"; cat $$dir/readyz.out; exit 1; }; \
	grep -qF '"status": "ready"' $$dir/readyz.out || \
		{ echo "serve-smoke: bad /readyz body"; cat $$dir/readyz.out; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "impulsed exited non-zero"; cat $$dir/impulsed.log; exit 1; }; \
	echo "serve-smoke OK"

# saturate-smoke is the end-to-end check for the sharded fleet
# (docs/FLEET.md): boot three worker impulsed shards on persistent
# archive dirs plus a shared trace dir, front them with a router
# (impulsed -route), drive a concurrent identical-spec burst through
# the router and assert fleet-wide single-flight by summing
# service_jobs_executed across the shards (exactly one execution),
# run a short `impulsectl saturate` sweep against the warmed router,
# SIGTERM one shard and assert the router reroutes the next
# submission (fleet_submits_rerouted rises, the request still lands),
# then restart the killed shard on its archive dir and assert the
# daemon recovered its archived results from disk.
saturate-smoke:
	@set -e; dir=$$(mktemp -d); trap 'kill $$p0 $$p1 $$p2 $$pf $$p0b 2>/dev/null || true; rm -rf "$$dir"' EXIT; \
	$(GO) build -o $$dir/impulsed ./cmd/impulsed; \
	$(GO) build -o $$dir/impulsectl ./cmd/impulsectl; \
	for i in 0 1 2; do \
		$$dir/impulsed -addr 127.0.0.1:0 -addr-file $$dir/addr$$i -exec 2 \
			-archive-dir $$dir/arch$$i -trace-dir $$dir/traces \
			2>$$dir/shard$$i.log & eval p$$i=$$!; \
	done; \
	for i in 0 1 2; do \
		for t in $$(seq 1 100); do [ -s $$dir/addr$$i ] && break; sleep 0.1; done; \
		[ -s $$dir/addr$$i ] || { echo "shard $$i never bound"; cat $$dir/shard$$i.log; exit 1; }; \
	done; \
	a0=$$(cat $$dir/addr0); a1=$$(cat $$dir/addr1); a2=$$(cat $$dir/addr2); \
	$$dir/impulsed -addr 127.0.0.1:0 -addr-file $$dir/addrF \
		-route "s0=http://$$a0,s1=http://$$a1,s2=http://$$a2" \
		2>$$dir/router.log & pf=$$!; \
	for t in $$(seq 1 100); do [ -s $$dir/addrF ] && break; sleep 0.1; done; \
	[ -s $$dir/addrF ] || { echo "router never bound"; cat $$dir/router.log; exit 1; }; \
	af=$$(cat $$dir/addrF); echo "fleet up: router $$af over $$a0 $$a1 $$a2"; \
	for t in $$(seq 1 50); do curl -fsS http://$$af/readyz >/dev/null 2>&1 && break; sleep 0.1; done; \
	$$dir/impulsectl -addr $$af load -n 24 \
		-spec '{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}' >$$dir/load.out; \
	cat $$dir/load.out; \
	grep -qF 'load ok: 24/24' $$dir/load.out || { echo "saturate-smoke: burst failed"; exit 1; }; \
	total=0; for i in 0 1 2; do \
		n=$$(curl -fsS "http://$$(cat $$dir/addr$$i)/metrics?format=plain" | \
			awk '$$1=="service.jobs_executed"{print $$2}'); \
		total=$$((total + n)); \
	done; \
	[ "$$total" = 1 ] || { echo "saturate-smoke: fleet-wide single-flight violated: $$total executions"; exit 1; }; \
	echo "fleet single-flight OK: 1 execution across 3 shards"; \
	$$dir/impulsectl -addr $$af saturate -rates 200,500 -duration 1s \
		-spec '{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}' >$$dir/sat.out; \
	cat $$dir/sat.out; \
	grep -q 'saturation' $$dir/sat.out || { echo "saturate-smoke: no saturation summary"; exit 1; }; \
	owner=$$(curl -fsS -X POST -d '{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}' \
		http://$$af/v1/jobs | tr -d ' ",' | awk -F: '/^shard:/{print $$2; exit}'); \
	echo "owner shard: $$owner"; \
	case $$owner in s0) opid=$$p0;; s1) opid=$$p1;; s2) opid=$$p2;; \
		*) echo "saturate-smoke: unroutable owner $$owner"; exit 1;; esac; \
	kill -TERM $$opid; wait $$opid 2>/dev/null || true; \
	code=$$(curl -s -o $$dir/re.out -w '%{http_code}' -X POST \
		-d '{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}' http://$$af/v1/jobs); \
	case $$code in 2*) ;; *) echo "saturate-smoke: reroute submit got $$code"; cat $$dir/re.out; exit 1;; esac; \
	rerouted=$$(curl -fsS "http://$$af/metrics?format=plain" | \
		awk '$$1=="fleet.submits_rerouted"{print $$2}'); \
	[ "$$rerouted" -ge 1 ] 2>/dev/null || \
		{ echo "saturate-smoke: router never rerouted (fleet.submits_rerouted=$$rerouted)"; exit 1; }; \
	echo "reroute OK after losing $$owner"; \
	case $$owner in s0) archdir=$$dir/arch0;; s1) archdir=$$dir/arch1;; s2) archdir=$$dir/arch2;; esac; \
	$$dir/impulsed -addr 127.0.0.1:0 -addr-file $$dir/addrR -archive-dir $$archdir \
		2>$$dir/restart.log & p0b=$$!; \
	for t in $$(seq 1 100); do [ -s $$dir/addrR ] && break; sleep 0.1; done; \
	recovered=$$(curl -fsS "http://$$(cat $$dir/addrR)/metrics?format=plain" | \
		awk '$$1=="service.jobs_recovered"{print $$2}'); \
	[ "$$recovered" -ge 1 ] 2>/dev/null || \
		{ echo "saturate-smoke: restarted shard recovered nothing"; cat $$dir/restart.log; exit 1; }; \
	echo "restart durability OK: $$recovered result(s) recovered from $$archdir"; \
	kill -TERM $$p0 $$p1 $$p2 $$pf $$p0b 2>/dev/null || true; \
	echo "saturate-smoke OK"

# ci is the pre-PR gate: formatting, vet, build, full tests, the race
# detector over the short suite, a short decoder fuzz, the analytical
# twin validation (fast geometry, hard error bounds), the service and
# fleet smoke tests, and a warn-only benchmark diff against the committed
# baseline — including the vector-replay K-sweep
# (BenchmarkVectorReplay/K=*) so a per-lane apply regression prints
# loudly. Benchmarks on shared CI hosts are too noisy to be a hard
# gate; a regression warns but does not fail the build — see
# docs/PERF.md. Run it before every PR.
ci:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -short ./...
	$(MAKE) fuzz-short
	$(MAKE) twin-validate
	$(MAKE) serve-smoke
	$(MAKE) saturate-smoke
	@$(MAKE) bench-diff BENCH_THRESHOLD=5 || \
		echo "ci: WARNING: benchmarks regressed vs $(BENCH_JSON) (soft gate; see docs/PERF.md)"

tables:
	$(GO) run ./cmd/table1
	$(GO) run ./cmd/table2

report:
	$(GO) run ./cmd/report -fast

sweeps:
	$(GO) run ./cmd/sweep

examples:
	@for e in quickstart cg tiled recolor ipc lrpc dbscan scripted; do \
		echo "=== examples/$$e ==="; \
		$(GO) run ./examples/$$e || exit 1; \
	done

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
