# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-json bench-diff fuzz-short ci tables report sweeps examples fmt vet clean

all: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the benchmark suite and writes the machine-readable
# results committed with each PR (name, ns/op, B/op, allocs/op, and the
# sim-cycles metric). Progress streams to stderr while it runs.
BENCH_JSON ?= BENCH_PR3.json
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# bench-diff reruns the suite and diffs it against the committed
# baseline: per-benchmark ns/op deltas plus the sim-cycles metric (which
# must not move in a pure-performance change). Exits non-zero when any
# ns/op regression exceeds BENCH_THRESHOLD percent.
BENCH_THRESHOLD ?= 10
bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem ./... | \
		$(GO) run ./cmd/benchjson -compare $(BENCH_JSON) -threshold $(BENCH_THRESHOLD)

# fuzz-short gives the trace decoder a brief randomized shakedown; the
# corpus seeds cover a real recorded trace plus known-malformed shapes.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzTraceDecode -fuzztime 10s ./internal/tracefile

# ci is the pre-PR gate: formatting, vet, build, full tests, the race
# detector over the short suite, and a short decoder fuzz. Run it before
# every PR.
ci:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -short ./...
	$(MAKE) fuzz-short

tables:
	$(GO) run ./cmd/table1
	$(GO) run ./cmd/table2

report:
	$(GO) run ./cmd/report -fast

sweeps:
	$(GO) run ./cmd/sweep

examples:
	@for e in quickstart cg tiled recolor ipc lrpc dbscan scripted; do \
		echo "=== examples/$$e ==="; \
		$(GO) run ./examples/$$e || exit 1; \
	done

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
