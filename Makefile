# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench tables report sweeps examples fmt vet clean

all: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/table1
	$(GO) run ./cmd/table2

report:
	$(GO) run ./cmd/report -fast

sweeps:
	$(GO) run ./cmd/sweep

examples:
	@for e in quickstart cg tiled recolor ipc lrpc dbscan scripted; do \
		echo "=== examples/$$e ==="; \
		$(GO) run ./examples/$$e || exit 1; \
	done

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
