# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-json bench-diff fuzz-short twin-validate serve-smoke ci tables report sweeps examples fmt vet clean

all: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the benchmark suite and writes the machine-readable
# results committed with each PR (name, ns/op, B/op, allocs/op, and the
# sim-cycles metric). Progress streams to stderr while it runs.
BENCH_JSON ?= BENCH_PR9.json
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# bench-diff reruns the suite and diffs it against the committed
# baseline: per-benchmark ns/op deltas plus the sim-cycles metric (which
# must not move in a pure-performance change). Exits non-zero when any
# ns/op regression exceeds BENCH_THRESHOLD percent.
BENCH_THRESHOLD ?= 10
bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem ./... | \
		$(GO) run ./cmd/benchjson -compare $(BENCH_JSON) -threshold $(BENCH_THRESHOLD)

# fuzz-short gives the binary decoders a brief randomized shakedown;
# the corpus seeds cover real recorded payloads plus known-malformed
# shapes. Three decoders run: the scalar trace replay decoder, the
# vectorized program decoder (which must agree with the scalar one op
# for op), and the columnar result decoder (which must reject every
# malformed blob without panicking).
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzTraceDecode -fuzztime 10s ./internal/tracefile
	$(GO) test -run '^$$' -fuzz FuzzVectorDecode -fuzztime 10s ./internal/tracefile
	$(GO) test -run '^$$' -fuzz FuzzColumnarDecode -fuzztime 10s ./internal/colres

# twin-validate runs every analytical twin against a full simulator
# sweep at the fast geometry and fails when any family's median cycles
# error exceeds its documented bound (docs/TWIN.md). The committed
# goldens under internal/twin/validate/testdata pin the full reports.
twin-validate:
	$(GO) run ./cmd/sweep -twin-validate -fast

# serve-smoke is the end-to-end check for the experiment service: boot
# impulsed on an ephemeral port, submit a small Table 1 job through
# impulsectl, diff the bytes against the direct cmd/table1 run, verify
# the single-flight dedup path with a concurrent load burst, check that
# the burst populated the Prometheus exposition (typed histograms with
# bucket series), fetch the job's provenance manifest and Perfetto
# timeline, render one `top` frame end-to-end, exercise the analytical
# twin tier (/v1/predict, a tier=twin load burst that must execute
# nothing, the twin metrics, /readyz), then shut the daemon down
# gracefully (SIGTERM -> drain).
serve-smoke:
	@set -e; dir=$$(mktemp -d); trap 'kill $$pid 2>/dev/null || true; rm -rf "$$dir"' EXIT; \
	$(GO) build -o $$dir/impulsed ./cmd/impulsed; \
	$(GO) build -o $$dir/impulsectl ./cmd/impulsectl; \
	$(GO) build -o $$dir/table1 ./cmd/table1; \
	$$dir/impulsed -addr 127.0.0.1:0 -addr-file $$dir/addr 2>$$dir/impulsed.log & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "impulsed never bound"; cat $$dir/impulsed.log; exit 1; }; \
	addr=$$(cat $$dir/addr); echo "impulsed up at $$addr"; \
	id=$$($$dir/impulsectl -addr $$addr submit \
		-spec '{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}' | cut -f1); \
	$$dir/impulsectl -addr $$addr result -wait $$id >$$dir/service.out; \
	$$dir/table1 -n 240 -nonzer 4 -niter 1 -cgits 2 -q >$$dir/direct.out; \
	diff -u $$dir/direct.out $$dir/service.out || { echo "serve-smoke: service output differs from CLI"; exit 1; }; \
	$$dir/impulsectl -addr $$addr load -n 8 \
		-spec '{"kind":"table1","n":240,"nonzer":4,"niter":1,"cgits":2}'; \
	$$dir/impulsectl -addr $$addr metrics >$$dir/metrics.out; \
	for want in \
		'# TYPE service_http_request_duration_us histogram' \
		'# TYPE service_job_run_duration_us histogram' \
		'service_job_run_duration_us_count{kind="table1"} 1' \
		'service_http_request_duration_us_bucket{endpoint="submit"' \
		'service_jobs_executed 1'; do \
		grep -qF "$$want" $$dir/metrics.out || \
			{ echo "serve-smoke: /metrics missing: $$want"; cat $$dir/metrics.out; exit 1; }; \
	done; \
	$$dir/impulsectl -addr $$addr manifest $$id >$$dir/manifest.json; \
	grep -qF '"cells_recorded": 3' $$dir/manifest.json || \
		{ echo "serve-smoke: bad manifest"; cat $$dir/manifest.json; exit 1; }; \
	$$dir/impulsectl -addr $$addr trace $$id >$$dir/trace.json; \
	grep -qF '"traceEvents"' $$dir/trace.json || \
		{ echo "serve-smoke: bad trace"; cat $$dir/trace.json; exit 1; }; \
	$$dir/impulsectl -addr $$addr top -once >$$dir/top.out; \
	grep -q 'job run duration by kind' $$dir/top.out || \
		{ echo "serve-smoke: top rendered nothing"; cat $$dir/top.out; exit 1; }; \
	$$dir/impulsectl -addr $$addr predict -family sram -fast >$$dir/predict.out; \
	for want in '"tier": "twin"' '"error_bound": 0.1' '"grid"'; do \
		grep -qF "$$want" $$dir/predict.out || \
			{ echo "serve-smoke: /v1/predict missing: $$want"; cat $$dir/predict.out; exit 1; }; \
	done; \
	$$dir/impulsectl -addr $$addr load -n 4 -tier twin >$$dir/twinload.out; \
	grep -qF '0 execution(s)' $$dir/twinload.out || \
		{ echo "serve-smoke: twin load burst ran the simulator"; cat $$dir/twinload.out; exit 1; }; \
	$$dir/impulsectl -addr $$addr metrics >$$dir/metrics2.out; \
	for want in \
		'service_twin_requests 5' \
		'service_twin_ineligible 0' \
		'# TYPE service_twin_latency_us histogram'; do \
		grep -qF "$$want" $$dir/metrics2.out || \
			{ echo "serve-smoke: /metrics missing: $$want"; cat $$dir/metrics2.out; exit 1; }; \
	done; \
	curl -fsS http://$$addr/readyz >$$dir/readyz.out || \
		{ echo "serve-smoke: /readyz not ready"; cat $$dir/readyz.out; exit 1; }; \
	grep -qF '"status": "ready"' $$dir/readyz.out || \
		{ echo "serve-smoke: bad /readyz body"; cat $$dir/readyz.out; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "impulsed exited non-zero"; cat $$dir/impulsed.log; exit 1; }; \
	echo "serve-smoke OK"

# ci is the pre-PR gate: formatting, vet, build, full tests, the race
# detector over the short suite, a short decoder fuzz, the analytical
# twin validation (fast geometry, hard error bounds), the service
# smoke test, and a warn-only benchmark diff against the committed
# baseline — including the vector-replay K-sweep
# (BenchmarkVectorReplay/K=*) so a per-lane apply regression prints
# loudly. Benchmarks on shared CI hosts are too noisy to be a hard
# gate; a regression warns but does not fail the build — see
# docs/PERF.md. Run it before every PR.
ci:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -short ./...
	$(MAKE) fuzz-short
	$(MAKE) twin-validate
	$(MAKE) serve-smoke
	@$(MAKE) bench-diff BENCH_THRESHOLD=5 || \
		echo "ci: WARNING: benchmarks regressed vs $(BENCH_JSON) (soft gate; see docs/PERF.md)"

tables:
	$(GO) run ./cmd/table1
	$(GO) run ./cmd/table2

report:
	$(GO) run ./cmd/report -fast

sweeps:
	$(GO) run ./cmd/sweep

examples:
	@for e in quickstart cg tiled recolor ipc lrpc dbscan scripted; do \
		echo "=== examples/$$e ==="; \
		$(GO) run ./examples/$$e || exit 1; \
	done

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
