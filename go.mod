module impulse

go 1.22
