package impulse_test

import (
	"testing"

	"impulse"
	"impulse/internal/obs"
	"impulse/internal/workloads"
)

// runDiag runs the Figure 1 diagonal kernel on a fresh machine, with or
// without an observability hub attached, and returns the simulated
// cycle count. The impulse configuration exercises the instrumented
// shadow-gather path as well as bus/DRAM/cache sites.
func runDiag(tb testing.TB, kind impulse.Options, hub *obs.Hub) uint64 {
	tb.Helper()
	s, err := impulse.NewSystem(kind)
	if err != nil {
		tb.Fatal(err)
	}
	if hub != nil {
		s.AttachObs(hub)
	}
	res, err := workloads.RunDiagonal(s, 256, 2, kind.Controller == impulse.Impulse)
	if err != nil {
		tb.Fatal(err)
	}
	return res.Row.Cycles
}

// TestObsDoesNotPerturbTiming is the guarantee the whole obs layer rests
// on: attaching a hub — with tracing and the windowed series both
// enabled — must not change a single simulated cycle or any counter.
func TestObsDoesNotPerturbTiming(t *testing.T) {
	t.Parallel()
	for _, kind := range []impulse.Options{
		{Controller: impulse.Conventional},
		{Controller: impulse.Impulse},
		{Controller: impulse.Impulse, Prefetch: impulse.PrefetchBoth},
	} {
		bare := runDiag(t, kind, nil)
		hub := obs.New(obs.Config{TraceLimit: 1 << 20, Window: 1000})
		observed := runDiag(t, kind, hub)
		if bare != observed {
			t.Errorf("%v/%v: observability changed timing: %d cycles bare, %d observed",
				kind.Controller, kind.Prefetch, bare, observed)
		}
		if hub.Trace().Len() == 0 {
			t.Errorf("%v/%v: hub attached but no spans recorded", kind.Controller, kind.Prefetch)
		}
	}
}

// BenchmarkObsOverhead measures the cost of the instrumentation sites on
// the host. "disabled" is the pay-for-what-you-use case — every site does
// one nil-pointer comparison and nothing else, which must stay within
// noise (≤2%) of an uninstrumented build. "enabled" records full span
// tracing plus the windowed series, bounding the worst-case cost of
// turning everything on.
func BenchmarkObsOverhead(b *testing.B) {
	kind := impulse.Options{Controller: impulse.Impulse}
	b.Run("disabled", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cycles = runDiag(b, kind, nil)
		}
		b.ReportMetric(float64(cycles), "sim-cycles")
	})
	b.Run("enabled", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			hub := obs.New(obs.Config{TraceLimit: 1 << 20, Window: 1000})
			cycles = runDiag(b, kind, hub)
		}
		b.ReportMetric(float64(cycles), "sim-cycles")
	})
}
